// Machine-readable bench verdict reports (the BENCH_*.json artifacts).
//
// bench/sharded_service and bench/qos_slo used to carry their own copies
// of the JSON writer; this is the shared one, extended with optional
// per-verdict histograms so BENCH artifacts carry whole latency
// distributions (tails), not just p50/p99 scalars. The schema is a strict
// superset of the PR 5/6 format, so older artifacts still diff cleanly:
//
//   {"bench": "<name>", "ok": true|false,
//    "verdicts": [
//      {"name": "...", "ok": true|false,
//       "metrics": {"<metric>": <number|null>, ...},
//       "histograms": {"<metric>": <histogram_to_json>, ...}}  // optional
//    ]}
//
// bench/bench_diff.cpp (via obs/bench_diff.h) compares two such files
// metric by metric across commits.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace gridsched::obs {

struct BenchVerdict {
  std::string name;
  bool ok = true;
  /// Non-finite values serialize as null (no NaN/Inf in JSON).
  std::vector<std::pair<std::string, double>> metrics;
  /// Full distributions; omitted from the JSON when empty.
  std::vector<std::pair<std::string, LatencyHistogram>> histograms;
};

struct BenchReport {
  std::string bench;
  bool ok = true;
  std::vector<BenchVerdict> verdicts;

  void write(std::ostream& out) const;
  /// Writes to `path`; logs to stderr and returns false on failure.
  bool write_file(const std::string& path) const;
};

/// Appends the optimality-gap metric pair for one objective:
///   "<prefix>_gap_pct"     = 100·(objective − lb)/lb   (gated: bench_diff
///                            treats unrecognized metrics as lower-is-
///                            better, which is exactly right for a gap)
///   "<prefix>_lower_bound" = lb  (informational: "bound" in the name
///                            opts it out of gating — docs/observability.md)
/// A non-positive lower bound serializes both as null rather than gating
/// on garbage. bounds::optimality_gap_pct computes the same definition;
/// this lives here so every bench threads gaps through BenchReport the
/// same way.
void add_gap_metric(BenchVerdict& verdict, const std::string& prefix,
                    double objective, double lower_bound);

}  // namespace gridsched::obs
