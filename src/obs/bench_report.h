// Machine-readable bench verdict reports (the BENCH_*.json artifacts).
//
// bench/sharded_service and bench/qos_slo used to carry their own copies
// of the JSON writer; this is the shared one, extended with optional
// per-verdict histograms so BENCH artifacts carry whole latency
// distributions (tails), not just p50/p99 scalars. The schema is a strict
// superset of the PR 5/6 format, so older artifacts still diff cleanly:
//
//   {"bench": "<name>", "ok": true|false,
//    "verdicts": [
//      {"name": "...", "ok": true|false,
//       "metrics": {"<metric>": <number|null>, ...},
//       "histograms": {"<metric>": <histogram_to_json>, ...}}  // optional
//    ]}
//
// bench/bench_diff.cpp (via obs/bench_diff.h) compares two such files
// metric by metric across commits.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace gridsched::obs {

struct BenchVerdict {
  std::string name;
  bool ok = true;
  /// Non-finite values serialize as null (no NaN/Inf in JSON).
  std::vector<std::pair<std::string, double>> metrics;
  /// Full distributions; omitted from the JSON when empty.
  std::vector<std::pair<std::string, LatencyHistogram>> histograms;
};

struct BenchReport {
  std::string bench;
  bool ok = true;
  std::vector<BenchVerdict> verdicts;

  void write(std::ostream& out) const;
  /// Writes to `path`; logs to stderr and returns false on failure.
  bool write_file(const std::string& path) const;
};

}  // namespace gridsched::obs
