#include "obs/bench_report.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <iostream>
#include <ostream>

#include "obs/json.h"
#include "obs/metrics_registry.h"

namespace gridsched::obs {

void BenchReport::write(std::ostream& out) const {
  JsonValue root;
  root.set("bench", JsonValue(bench));
  root.set("ok", JsonValue(ok));
  JsonValue::Array verdict_values;
  verdict_values.reserve(verdicts.size());
  for (const BenchVerdict& verdict : verdicts) {
    JsonValue entry;
    entry.set("name", JsonValue(verdict.name));
    entry.set("ok", JsonValue(verdict.ok));
    JsonValue::Object metrics;
    metrics.reserve(verdict.metrics.size());
    for (const auto& [name, value] : verdict.metrics) {
      metrics.emplace_back(
          name, std::isfinite(value) ? JsonValue(value) : JsonValue());
    }
    entry.set("metrics", JsonValue(std::move(metrics)));
    if (!verdict.histograms.empty()) {
      JsonValue::Object histograms;
      histograms.reserve(verdict.histograms.size());
      for (const auto& [name, histogram] : verdict.histograms) {
        histograms.emplace_back(name, histogram_to_json(histogram));
      }
      entry.set("histograms", JsonValue(std::move(histograms)));
    }
    verdict_values.emplace_back(std::move(entry));
  }
  root.set("verdicts", JsonValue(std::move(verdict_values)));
  out << root.dump(2) << "\n";
}

void add_gap_metric(BenchVerdict& verdict, const std::string& prefix,
                    double objective, double lower_bound) {
  const double gap =
      lower_bound > 0.0 ? 100.0 * (objective - lower_bound) / lower_bound
                        : std::numeric_limits<double>::quiet_NaN();
  verdict.metrics.emplace_back(prefix + "_gap_pct", gap);
  verdict.metrics.emplace_back(
      prefix + "_lower_bound",
      lower_bound > 0.0 ? lower_bound
                        : std::numeric_limits<double>::quiet_NaN());
}

bool BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "failed to open " << path << " for writing\n";
    return false;
  }
  write(out);
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace gridsched::obs
