// Event-driven dynamic grid simulator.
//
// Models the scenario the paper positions the cMA for: independent jobs
// arrive continuously, and every `scheduler_period` simulated seconds the
// batch scheduler is activated on the jobs that arrived since the last
// activation (plus any re-queued ones). Ready times passed to the
// scheduler encode each machine's current backlog, exactly as in Eq. 1 of
// the paper. Machines can optionally fail and recover (exponential
// MTBF/MTTR); jobs on a failed machine are re-queued, since execution is
// non-preemptive.
//
// The arrival stream comes from a pluggable WorkloadSource
// (workload/workload_source.h): trace replay, bursty, diurnal,
// heavy-tailed, flash-crowd, or — when `SimConfig::workload` is unset —
// the historical Poisson process with LogNormal sizes, reproduced draw
// for draw. Whatever produced it, the materialized stream of the last run
// is exposed via `arrival_trace()` with effective job classes filled in,
// so any run can be recorded (workload/trace_io.h) and replayed
// bit-for-bit.
//
// ETC entries for a (job, machine) pair derive from job workload (MI) and
// machine speed (MIPS), optionally distorted by two independent
// inconsistency mechanisms:
//
//   * class affinity (`num_job_classes` > 0): machines carry a hardware
//     class (machine id modulo the class count, i.e. types interleave
//     across the grid like alternating racks) and every job gets a
//     deterministic class; a job on a class-matched machine runs
//     `class_speedup` times faster. This is the structured inconsistency
//     of real heterogeneous grids — orderings differ per job CLASS — and
//     the regime QoS brokers partition work by.
//   * per-pair noise (`consistency_noise` > 0): a deterministic hash
//     normal distorts each pair, `etc *= exp(noise * z)` — unstructured
//     inconsistency with no exploitable pattern.
//
// Both disabled yields a perfectly consistent grid.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "sim/batch_scheduler.h"
#include "workload/workload_source.h"

namespace gridsched {

struct SimConfig {
  double horizon = 2'000.0;        // arrival window (simulated seconds)
  double arrival_rate = 0.5;       // mean jobs per simulated second
  double scheduler_period = 50.0;  // batch activation interval
  int num_machines = 16;
  double mips_min = 100.0;
  double mips_max = 1'000.0;
  // Job workloads ~ LogNormal(log_mean, log_sigma), in millions of instrs.
  double workload_log_mean = 10.0;  // exp(10) ~ 22k MI
  double workload_log_sigma = 0.8;
  double consistency_noise = 0.0;  // 0 = consistent grid; ~0.5 = inconsistent
  // Class-structured inconsistency (0 disables): machine class = machine
  // id % num_job_classes, job class hashed from the job id; a matched
  // pair runs `class_speedup` x faster. Keep the class count coprime to
  // the shard count when sharding (see docs/service.md) so every shard
  // inherits every hardware class.
  int num_job_classes = 0;
  double class_speedup = 3.0;
  // Machine churn (0 disables): mean time between failures / to repair.
  double machine_mtbf = 0.0;
  double machine_mttr = 0.0;
  /// Cost model for QoS budgets (0 disables): machine m charges
  /// `machine_cost_rate * mips_m / mips_max` cost units per busy second —
  /// faster machines cost proportionally more, the Buyya-style cost-time
  /// trade-off. Passed to schedulers via BatchContext::machine_cost_rates.
  double machine_cost_rate = 0.0;
  bool drain = true;  // keep activating past the horizon until queue empties
  std::uint64_t seed = 1;
  /// Arrival stream. Unset = Poisson(arrival_rate) with
  /// LogNormal(workload_log_mean, workload_log_sigma) sizes, exactly the
  /// stream this simulator always produced. Shared so SimConfig stays
  /// copyable (benches clone a base config per run); sources are
  /// stateless across runs.
  std::shared_ptr<WorkloadSource> workload;
  /// Streaming arrival stream, mutually exclusive with `workload`: the
  /// simulator pulls `next_chunk(now)` each activation and holds only the
  /// in-flight job window, so a multi-million-job trace replays in O(1)
  /// memory (SimMetrics::peak_resident_jobs reports the window's high
  /// water mark). Unlike `workload`, a stream carries a cursor and is
  /// CONSUMED by one run — build a fresh one per run. In this mode
  /// `job_records()`/`arrival_trace()` stay empty; observe per-job
  /// outcomes via set_job_observer.
  std::shared_ptr<StreamingWorkloadSource> stream;
  /// Recorded churn to replay (workload/trace_io.h sidecar): when set,
  /// machine failures come from this event sequence instead of the
  /// MTBF/MTTR draws, making a churny run reproducible under ANY
  /// scheduler and either arrival mode. Events must be the recorded
  /// order (non-decreasing activation windows), validated at run().
  std::shared_ptr<const std::vector<ChurnEvent>> churn_replay;
};

/// Per-job outcome record.
struct SimJobRecord {
  int id = 0;
  double arrival = 0.0;
  double start = -1.0;
  double finish = -1.0;
  MachineId machine = -1;
  int attempts = 0;  // > 1 when re-queued by machine failures
  /// Dropped at ingress by admission control (Schedule::kRejected gene);
  /// start/finish/machine stay unset.
  bool rejected = false;

  [[nodiscard]] double flowtime() const noexcept { return finish - arrival; }
  [[nodiscard]] double wait() const noexcept { return start - arrival; }
};

struct SimMetrics {
  int jobs_arrived = 0;
  int jobs_completed = 0;
  int jobs_requeued = 0;  // requeue events (failures)
  int activations = 0;
  double mean_batch_size = 0.0;
  double mean_flowtime = 0.0;   // completion - arrival, averaged
  double mean_wait = 0.0;       // start - arrival, averaged
  /// Mean of flowtime / ideal-execution-time per job, where the ideal is
  /// the job's fastest possible ETC on any machine of the grid (>= 1; the
  /// classic QoS ratio: how much slower the grid felt than a dedicated
  /// best machine).
  double mean_slowdown = 0.0;
  double max_flowtime = 0.0;
  double makespan = 0.0;        // finish time of the last job
  double utilization = 0.0;     // busy machine-time / elapsed machine-time
  double scheduler_cpu_ms = 0.0;  // real time spent inside the scheduler
  /// Flowtime distribution of completed jobs — mean-only latency hides
  /// the tail, so p50/p99 come from here (flowtime_hist.p99()).
  LatencyHistogram flowtime_hist;
  // QoS outcomes (all zero when the trace carries no deadlines).
  /// High-water mark of jobs resident in simulator memory at once. In
  /// streaming mode this is the in-flight window (bounded by scheduling
  /// locality, independent of trace length — the O(1)-memory guarantee,
  /// gated by bench/trace_replay); in materialized mode it equals
  /// jobs_arrived. Deterministic, so parity checks exclude it like
  /// scheduler_cpu_ms.
  int peak_resident_jobs = 0;
  int jobs_rejected = 0;   // dropped at ingress by admission control
  int deadline_jobs = 0;   // jobs that carried a deadline
  int deadline_missed = 0; // of those: late, rejected, or unfinished
  double total_tardiness = 0.0;  // sum of (finish - deadline) over late jobs
  double total_cost = 0.0;       // executed work priced by machine cost rates

  [[nodiscard]] double deadline_miss_rate() const noexcept {
    return deadline_jobs > 0
               ? static_cast<double>(deadline_missed) / deadline_jobs
               : 0.0;
  }
};

class GridSimulator {
 public:
  /// Fires once per job, in job-id (= arrival) order, when the job's
  /// outcome is final: at end of run in materialized mode, as the
  /// in-flight window drains in streaming mode. The TraceJob carries the
  /// normalized fields (resolved class, -1 sentinels) the run actually
  /// used. Identical call sequence in both modes — the bit-identity
  /// bridge between them.
  using JobObserver = std::function<void(const SimJobRecord&, const TraceJob&)>;

  explicit GridSimulator(SimConfig config);

  /// Runs one full simulation with the given scheduler. Deterministic in
  /// (config.seed, scheduler behaviour).
  [[nodiscard]] SimMetrics run(BatchScheduler& scheduler);

  void set_job_observer(JobObserver observer) {
    observer_ = std::move(observer);
  }

  /// Per-job records of the last run (empty before the first run, and
  /// always empty in streaming mode — use set_job_observer there).
  [[nodiscard]] const std::vector<SimJobRecord>& job_records() const noexcept {
    return records_;
  }

  /// The materialized arrival stream of the last run, with the job class
  /// each ETC actually used filled in (when classes are enabled).
  /// `write_trace(out, sim.arrival_trace())` re-emits the run as a trace
  /// that TraceWorkloadSource replays bit-for-bit under the same config.
  [[nodiscard]] const std::vector<TraceJob>& arrival_trace() const noexcept {
    return trace_;
  }

  /// The churn events of the last run, in application order — recorded
  /// whether they were drawn (MTBF/MTTR) or replayed. `write_churn_trace`
  /// of this plus SimConfig::churn_replay of the read-back closes the
  /// record→replay loop for the failure process.
  [[nodiscard]] const std::vector<ChurnEvent>& churn_trace() const noexcept {
    return churn_trace_;
  }

  /// Name of the configured workload source ("poisson" when unset).
  [[nodiscard]] std::string_view workload_name() const noexcept {
    if (config_.stream) return config_.stream->name();
    return config_.workload ? config_.workload->name() : "poisson";
  }

  /// Per-machine busy time (executed work, seconds) of the last run. The
  /// sharded driver folds these into per-shard utilization; empty before
  /// the first run.
  [[nodiscard]] const std::vector<double>& machine_busy() const noexcept {
    return machine_busy_;
  }

  /// The sampled MIPS rating of each machine (set on the first run).
  [[nodiscard]] const std::vector<double>& machine_mips() const noexcept {
    return machine_mips_;
  }

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  SimConfig config_;
  std::vector<SimJobRecord> records_;
  std::vector<TraceJob> trace_;
  std::vector<ChurnEvent> churn_trace_;
  std::vector<double> machine_busy_;
  std::vector<double> machine_mips_;
  JobObserver observer_;
};

}  // namespace gridsched
