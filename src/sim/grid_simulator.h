// Event-driven dynamic grid simulator.
//
// Models the scenario the paper positions the cMA for: independent jobs
// arrive continuously (Poisson process), and every `scheduler_period`
// simulated seconds the batch scheduler is activated on the jobs that
// arrived since the last activation (plus any re-queued ones). Ready times
// passed to the scheduler encode each machine's current backlog, exactly as
// in Eq. 1 of the paper. Machines can optionally fail and recover
// (exponential MTBF/MTTR); jobs on a failed machine are re-queued, since
// execution is non-preemptive.
//
// ETC entries for a (job, machine) pair derive from job workload (MI) and
// machine speed (MIPS), optionally distorted by a deterministic per-pair
// noise factor that produces inconsistent-class behaviour
// (`etc = workload / mips * exp(noise * z)`, z a hash-based standard
// normal). noise = 0 yields a perfectly consistent grid.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/batch_scheduler.h"

namespace gridsched {

struct SimConfig {
  double horizon = 2'000.0;        // arrival window (simulated seconds)
  double arrival_rate = 0.5;       // mean jobs per simulated second
  double scheduler_period = 50.0;  // batch activation interval
  int num_machines = 16;
  double mips_min = 100.0;
  double mips_max = 1'000.0;
  // Job workloads ~ LogNormal(log_mean, log_sigma), in millions of instrs.
  double workload_log_mean = 10.0;  // exp(10) ~ 22k MI
  double workload_log_sigma = 0.8;
  double consistency_noise = 0.0;  // 0 = consistent grid; ~0.5 = inconsistent
  // Machine churn (0 disables): mean time between failures / to repair.
  double machine_mtbf = 0.0;
  double machine_mttr = 0.0;
  bool drain = true;  // keep activating past the horizon until queue empties
  std::uint64_t seed = 1;
};

/// Per-job outcome record.
struct SimJobRecord {
  int id = 0;
  double arrival = 0.0;
  double start = -1.0;
  double finish = -1.0;
  MachineId machine = -1;
  int attempts = 0;  // > 1 when re-queued by machine failures

  [[nodiscard]] double flowtime() const noexcept { return finish - arrival; }
  [[nodiscard]] double wait() const noexcept { return start - arrival; }
};

struct SimMetrics {
  int jobs_arrived = 0;
  int jobs_completed = 0;
  int jobs_requeued = 0;  // requeue events (failures)
  int activations = 0;
  double mean_batch_size = 0.0;
  double mean_flowtime = 0.0;   // completion - arrival, averaged
  double mean_wait = 0.0;       // start - arrival, averaged
  /// Mean of flowtime / ideal-execution-time per job, where the ideal is
  /// the job's fastest possible ETC on any machine of the grid (>= 1; the
  /// classic QoS ratio: how much slower the grid felt than a dedicated
  /// best machine).
  double mean_slowdown = 0.0;
  double max_flowtime = 0.0;
  double makespan = 0.0;        // finish time of the last job
  double utilization = 0.0;     // busy machine-time / elapsed machine-time
  double scheduler_cpu_ms = 0.0;  // real time spent inside the scheduler
};

class GridSimulator {
 public:
  explicit GridSimulator(SimConfig config);

  /// Runs one full simulation with the given scheduler. Deterministic in
  /// (config.seed, scheduler behaviour).
  [[nodiscard]] SimMetrics run(BatchScheduler& scheduler);

  /// Per-job records of the last run (empty before the first run).
  [[nodiscard]] const std::vector<SimJobRecord>& job_records() const noexcept {
    return records_;
  }

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  SimConfig config_;
  std::vector<SimJobRecord> records_;
};

}  // namespace gridsched
