#include "sim/grid_simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "common/stopwatch.h"

namespace gridsched {
namespace {

/// Deterministic per-(job, machine) standard normal from a hash, so the
/// same pair gets the same ETC distortion in every activation (the grid's
/// inconsistency is a property of the pair, not of time).
double pair_noise(std::uint64_t seed, int job_id, int machine) {
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(job_id) << 20) ^
                    static_cast<std::uint64_t>(machine);
  Rng rng(splitmix64(h));
  return rng.normal();
}

struct MachineState {
  double mips = 0.0;
  double free_at = 0.0;       // when current backlog drains
  double busy_until_now = 0.0;  // accumulated busy time
  bool alive = true;
  double repair_at = 0.0;     // when a dead machine comes back
  std::vector<int> queued_jobs;  // jobs committed but not finished
};

}  // namespace

GridSimulator::GridSimulator(SimConfig config) : config_(std::move(config)) {
  if (config_.num_machines <= 0) {
    throw std::invalid_argument("SimConfig: need at least one machine");
  }
  if (config_.workload && config_.stream) {
    throw std::invalid_argument(
        "SimConfig: workload and stream are mutually exclusive");
  }
  // arrival_rate only feeds the default Poisson stream; a config with an
  // explicit workload source may leave it at anything.
  if ((!config_.workload && !config_.stream && config_.arrival_rate <= 0) ||
      config_.horizon <= 0 || config_.scheduler_period <= 0) {
    throw std::invalid_argument("SimConfig: rates and horizon must be > 0");
  }
  if ((config_.machine_mtbf > 0) != (config_.machine_mttr > 0)) {
    throw std::invalid_argument(
        "SimConfig: mtbf and mttr must be enabled together");
  }
  if (config_.num_job_classes < 0 ||
      (config_.num_job_classes > 0 && config_.class_speedup < 1.0)) {
    throw std::invalid_argument(
        "SimConfig: class_speedup must be >= 1 when classes are enabled");
  }
}

SimMetrics GridSimulator::run(BatchScheduler& scheduler) {
  Rng rng(config_.seed);
  Rng arrival_rng = rng.split();
  Rng workload_rng = rng.split();
  Rng machine_rng = rng.split();
  Rng churn_rng = rng.split();

  const bool streaming = config_.stream != nullptr;
  const bool replaying_churn = config_.churn_replay != nullptr;
  const bool churn_enabled = config_.machine_mtbf > 0 || replaying_churn;

  // --- Build the grid. ---
  std::vector<MachineState> machines(
      static_cast<std::size_t>(config_.num_machines));
  for (auto& m : machines) {
    m.mips = machine_rng.uniform(config_.mips_min, config_.mips_max);
  }

  // --- Validate replayed churn up front: events must be applicable in
  // recorded order (non-decreasing activation windows), target real
  // machines, and be internally consistent. ---
  if (replaying_churn) {
    double prev_window = 0.0;
    for (const ChurnEvent& e : *config_.churn_replay) {
      if (e.machine < 0 || e.machine >= config_.num_machines) {
        throw std::runtime_error(
            "GridSimulator: churn_replay event targets an unknown machine");
      }
      if (!(e.fail_at >= 0) || !std::isfinite(e.fail_at) ||
          !(e.repair_at >= e.fail_at) || !std::isfinite(e.repair_at)) {
        throw std::runtime_error(
            "GridSimulator: churn_replay event times must be finite, "
            "0 <= fail_at <= repair_at");
      }
      const double window = std::ceil(e.fail_at / config_.scheduler_period);
      if (window < prev_window) {
        throw std::runtime_error(
            "GridSimulator: churn_replay events out of recorded order");
      }
      prev_window = window;
    }
  }

  records_.clear();
  trace_.clear();
  churn_trace_.clear();
  auto hashed_class = [&](int job_id) {
    std::uint64_t state =
        config_.seed ^ (static_cast<std::uint64_t>(job_id) * 0x2545f4914f6cdd1dULL);
    return static_cast<int>(splitmix64(state) %
                            static_cast<std::uint64_t>(config_.num_job_classes));
  };
  // Resolve the effective class so downstream consumers see exactly what
  // the ETCs use (trace-supplied class wins, else the historical per-id
  // hash), and normalize QoS sentinels to exactly -1 so a recorded trace
  // round-trips bit for bit (the writer emits an empty field for any
  // negative value, which reads back as -1.0; non-finite = unset too).
  auto normalize_job = [&](TraceJob& job, int id) {
    if (config_.num_job_classes > 0) {
      job.job_class = job.job_class >= 0
                          ? job.job_class % config_.num_job_classes
                          : hashed_class(id);
    }
    if (!(job.deadline >= 0) || !std::isfinite(job.deadline)) {
      job.deadline = -1.0;
    }
    if (!(job.budget >= 0) || !std::isfinite(job.budget)) job.budget = -1.0;
    if (job.user < 0) job.user = -1;
  };

  bool qos_deadlines = false;
  bool qos_budgets = false;
  if (!streaming) {
    // --- Materialize the arrival stream over the horizon. ---
    if (config_.workload) {
      trace_ = config_.workload->generate(config_.horizon, arrival_rng,
                                          workload_rng);
    } else {
      PoissonWorkload poisson(
          config_.arrival_rate,
          LogNormalSize{config_.workload_log_mean, config_.workload_log_sigma});
      trace_ = poisson.generate(config_.horizon, arrival_rng, workload_rng);
    }
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      TraceJob& job = trace_[i];
      // Negated comparisons reject NaN alongside genuine range violations.
      if (!(job.arrival >= 0) || !std::isfinite(job.arrival) ||
          !(job.workload_mi > 0) || !std::isfinite(job.workload_mi) ||
          (i > 0 && job.arrival < trace_[i - 1].arrival)) {
        throw std::runtime_error(
            "GridSimulator: workload source produced an invalid stream "
            "(arrivals must be finite, sorted and >= 0, sizes finite > 0)");
      }
      SimJobRecord record;
      record.id = static_cast<int>(i);
      record.arrival = job.arrival;
      records_.push_back(record);
      normalize_job(job, record.id);
    }
    qos_deadlines =
        std::any_of(trace_.begin(), trace_.end(),
                    [](const TraceJob& job) { return job.deadline >= 0; });
    qos_budgets =
        std::any_of(trace_.begin(), trace_.end(), [](const TraceJob& job) {
          return job.user >= 0 || job.budget >= 0;
        });
  } else {
    // A stream cannot be scanned up front, so the QoS regime is the
    // source's declaration. A declared-but-unset column is behaviorally
    // inert (infinite slack / no users), pinned by test.
    const StreamQos stream_qos = config_.stream->qos();
    qos_deadlines = stream_qos.deadlines;
    qos_budgets = stream_qos.budgets;
  }

  // --- In-flight window (streaming mode): jobs [first_live, next_id)
  // keyed by id. A job leaves the window only once its outcome can never
  // change again; record_of/job_of dispatch so the batch loop below is
  // mode-agnostic. ---
  std::deque<TraceJob> live_jobs;
  std::deque<SimJobRecord> live_records;
  int first_live = 0;
  int next_id = 0;
  double last_arrival = 0.0;
  std::vector<TraceJob> chunk;
  bool stream_open = streaming;

  auto job_of = [&](int id) -> TraceJob& {
    return streaming ? live_jobs[static_cast<std::size_t>(id - first_live)]
                     : trace_[static_cast<std::size_t>(id)];
  };
  auto record_of = [&](int id) -> SimJobRecord& {
    return streaming ? live_records[static_cast<std::size_t>(id - first_live)]
                     : records_[static_cast<std::size_t>(id)];
  };

  auto cost_rate_of = [&](int machine) {
    return config_.machine_cost_rate *
           machines[static_cast<std::size_t>(machine)].mips /
           config_.mips_max;
  };

  auto etc_of = [&](int job_id, int machine) {
    const TraceJob& job = job_of(job_id);
    double base =
        job.workload_mi / machines[static_cast<std::size_t>(machine)].mips;
    if (config_.num_job_classes > 0 &&
        machine % config_.num_job_classes == job.job_class) {
      base /= config_.class_speedup;
    }
    if (config_.consistency_noise <= 0) return base;
    return base * std::exp(config_.consistency_noise *
                           pair_noise(config_.seed, job_id, machine));
  };

  SimMetrics metrics;
  if (!streaming) metrics.jobs_arrived = static_cast<int>(records_.size());

  // --- Per-job finalization, shared by both modes and always invoked in
  // id order, so every floating-point accumulation happens in the same
  // sequence — the streaming/materialized bit-identity hinges on this. ---
  double flow_sum = 0.0;
  double wait_sum = 0.0;
  double slowdown_sum = 0.0;
  auto finalize_job = [&](const SimJobRecord& r, const TraceJob& job) {
    // Deadline accounting covers every outcome: late, rejected at
    // ingress, or never finished all count as misses — admission control
    // cannot improve the SLO by hiding jobs.
    const double deadline = job.deadline;
    if (deadline >= 0) {
      ++metrics.deadline_jobs;
      if (r.rejected || r.finish < 0 || r.finish > deadline) {
        ++metrics.deadline_missed;
        if (r.finish > deadline) {
          metrics.total_tardiness += r.finish - deadline;
        }
      }
    }
    if (observer_) observer_(r, job);
    if (r.finish < 0) return;
    ++metrics.jobs_completed;
    flow_sum += r.flowtime();
    wait_sum += r.wait();
    metrics.flowtime_hist.add(r.flowtime());
    if (config_.machine_cost_rate > 0) {
      metrics.total_cost += (r.finish - r.start) * cost_rate_of(r.machine);
    }
    double ideal = std::numeric_limits<double>::infinity();
    for (int m = 0; m < config_.num_machines; ++m) {
      ideal = std::min(ideal, etc_of(r.id, m));
    }
    slowdown_sum += r.flowtime() / ideal;
    metrics.max_flowtime = std::max(metrics.max_flowtime, r.flowtime());
    metrics.makespan = std::max(metrics.makespan, r.finish);
  };

  std::deque<int> pending;  // job ids awaiting scheduling
  std::size_t next_arrival = 0;
  std::size_t churn_cursor = 0;  // next churn_replay event to apply
  double now = 0.0;
  Stopwatch cpu;
  double total_batch = 0.0;

  // Fails machine `mi` at `fail_at`: jobs not finished by then are lost
  // and re-queued (non-preemptive execution restarts elsewhere). Records
  // the event, so drawn and replayed churn expose the same churn_trace().
  auto fail_machine = [&](int mi, double fail_at, double repair_at) {
    auto& m = machines[static_cast<std::size_t>(mi)];
    m.alive = false;
    m.repair_at = repair_at;
    std::vector<int> survivors;
    for (int job : m.queued_jobs) {
      auto& r = record_of(job);
      if (r.finish <= fail_at) {
        survivors.push_back(job);  // already done, keep the record
      } else {
        r.start = -1.0;
        r.finish = -1.0;
        r.machine = -1;
        pending.push_back(job);
        ++metrics.jobs_requeued;
      }
    }
    m.queued_jobs = std::move(survivors);
    m.free_at = fail_at;
    churn_trace_.push_back(ChurnEvent{mi, fail_at, repair_at});
  };

  const double max_sim_time = config_.horizon * 1000.0;  // runaway guard
  while (now < max_sim_time) {
    now += config_.scheduler_period;

    // --- Machine churn within (now - period, now]. ---
    if (replaying_churn) {
      // Repairs first: a machine repaired this activation rejoins the
      // batch below but cannot fail again until the next one — the same
      // rule the drawn pass enforces, so recorded events never target a
      // just-repaired machine.
      for (auto& m : machines) {
        if (!m.alive && m.repair_at <= now) {
          m.alive = true;
          m.free_at = std::max(m.free_at, m.repair_at);
        }
      }
      const auto& events = *config_.churn_replay;
      while (churn_cursor < events.size() &&
             events[churn_cursor].fail_at <= now) {
        const ChurnEvent& e = events[churn_cursor];
        if (!machines[static_cast<std::size_t>(e.machine)].alive) {
          throw std::runtime_error(
              "GridSimulator: churn_replay event for a machine already down");
        }
        fail_machine(e.machine, e.fail_at, e.repair_at);
        ++churn_cursor;
      }
    } else if (config_.machine_mtbf > 0) {
      for (std::size_t mi = 0; mi < machines.size(); ++mi) {
        auto& m = machines[mi];
        if (!m.alive) {
          if (m.repair_at <= now) {
            m.alive = true;
            m.free_at = std::max(m.free_at, m.repair_at);
          }
          continue;
        }
        const double p_fail =
            1.0 - std::exp(-config_.scheduler_period / config_.machine_mtbf);
        if (churn_rng.chance(p_fail)) {
          const double fail_at =
              now - churn_rng.uniform(0.0, config_.scheduler_period);
          fail_machine(static_cast<int>(mi), fail_at,
                       fail_at +
                           churn_rng.exponential(1.0 / config_.machine_mttr));
        }
      }
    }

    // --- Retire immortal jobs from the in-flight window (streaming).
    // After this activation's churn, a job with finish <= now can never
    // be re-queued (every future fail_at lands in a later window), so
    // the contiguous finished/rejected prefix is final. Finalizing
    // exactly that prefix keeps the accumulation order identical to the
    // materialized end-of-run pass. ---
    if (streaming) {
      const int prune_from = first_live;
      while (!live_records.empty()) {
        const SimJobRecord& r = live_records.front();
        if (!(r.rejected || (r.finish >= 0 && r.finish <= now))) break;
        finalize_job(r, live_jobs.front());
        live_records.pop_front();
        live_jobs.pop_front();
        ++first_live;
      }
      if (churn_enabled && first_live != prune_from) {
        // Retired ids can never be re-queued; drop them so queue scans
        // and memory stay proportional to the live window.
        for (auto& m : machines) {
          std::erase_if(m.queued_jobs,
                        [&](int id) { return id < first_live; });
        }
      }
    }

    // --- Collect arrivals up to now. ---
    if (!streaming) {
      while (next_arrival < records_.size() &&
             records_[next_arrival].arrival <= now) {
        pending.push_back(records_[next_arrival].id);
        ++next_arrival;
      }
    } else if (stream_open) {
      chunk.clear();
      stream_open = config_.stream->next_chunk(now, chunk);
      for (const TraceJob& incoming : chunk) {
        // Horizon convention is half-open [0, horizon) everywhere: a
        // boundary arrival is dropped, exactly as the synthetic
        // generators and TraceWorkloadSource never emit it. Released
        // jobs are sorted, so the rest of the chunk is past it too.
        if (incoming.arrival >= config_.horizon) {
          stream_open = false;
          break;
        }
        if (!(incoming.arrival >= 0) || !std::isfinite(incoming.arrival) ||
            !(incoming.workload_mi > 0) ||
            !std::isfinite(incoming.workload_mi) ||
            incoming.arrival < last_arrival) {
          throw std::runtime_error(
              "GridSimulator: streaming source produced an invalid stream "
              "(arrivals must be finite, sorted and >= 0, sizes finite > 0)");
        }
        last_arrival = incoming.arrival;
        SimJobRecord record;
        record.id = next_id;
        record.arrival = incoming.arrival;
        live_records.push_back(record);
        live_jobs.push_back(incoming);
        normalize_job(live_jobs.back(), next_id);
        pending.push_back(next_id);
        ++next_id;
        ++metrics.jobs_arrived;
      }
      if (now >= config_.horizon) stream_open = false;
      metrics.peak_resident_jobs =
          std::max(metrics.peak_resident_jobs,
                   static_cast<int>(live_records.size()));
    }

    const bool horizon_passed =
        streaming ? !stream_open : next_arrival >= records_.size();
    if (pending.empty()) {
      if (horizon_passed) break;  // nothing left to do
      continue;
    }

    // --- Build the batch ETC problem over alive machines. ---
    std::vector<int> alive;  // batch machine index -> grid machine id
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
      if (machines[mi].alive) alive.push_back(static_cast<int>(mi));
    }
    if (alive.empty()) {
      if (horizon_passed && !churn_enabled) break;
      continue;  // wait for a repair
    }

    std::vector<int> batch(pending.begin(), pending.end());
    pending.clear();
    EtcMatrix etc(static_cast<int>(batch.size()),
                  static_cast<int>(alive.size()));
    for (std::size_t bj = 0; bj < batch.size(); ++bj) {
      for (std::size_t bm = 0; bm < alive.size(); ++bm) {
        etc.set(static_cast<JobId>(bj), static_cast<MachineId>(bm),
                etc_of(batch[bj], alive[bm]));
      }
    }
    for (std::size_t bm = 0; bm < alive.size(); ++bm) {
      const auto& m = machines[static_cast<std::size_t>(alive[bm])];
      etc.set_ready_time(static_cast<MachineId>(bm),
                         std::max(0.0, m.free_at - now));
    }

    // --- Run the scheduler on the batch. ---
    BatchContext ctx;
    ctx.job_ids = batch;
    ctx.machine_ids = alive;
    ctx.machine_mips.reserve(alive.size());
    for (const int machine : alive) {
      ctx.machine_mips.push_back(
          machines[static_cast<std::size_t>(machine)].mips);
    }
    ctx.activation = static_cast<std::uint64_t>(metrics.activations);
    if (config_.num_job_classes > 0) {
      ctx.num_job_classes = config_.num_job_classes;
      ctx.class_speedup = config_.class_speedup;
      ctx.job_classes.reserve(batch.size());
      for (const int job : batch) {
        ctx.job_classes.push_back(job_of(job).job_class);
      }
    }
    if (qos_deadlines) {
      // Relative slack: absolute deadline minus the activation time, so
      // schedulers compare it against batch completion times directly.
      ctx.job_deadlines.reserve(batch.size());
      for (const int job : batch) {
        const double deadline = job_of(job).deadline;
        ctx.job_deadlines.push_back(
            deadline >= 0 ? deadline - now
                          : std::numeric_limits<double>::infinity());
      }
    }
    if (qos_budgets) {
      ctx.job_users.reserve(batch.size());
      ctx.job_budgets.reserve(batch.size());
      for (const int job : batch) {
        ctx.job_users.push_back(job_of(job).user);
        ctx.job_budgets.push_back(job_of(job).budget);
      }
    }
    if (config_.machine_cost_rate > 0) {
      ctx.machine_cost_rates.reserve(alive.size());
      for (const int machine : alive) {
        ctx.machine_cost_rates.push_back(cost_rate_of(machine));
      }
    }
    cpu.restart();
    const Schedule plan = scheduler.schedule_batch(etc, ctx);
    metrics.scheduler_cpu_ms += cpu.elapsed_ms();
    if (!plan.complete(etc.num_machines()) ||
        plan.num_jobs() != etc.num_jobs()) {
      throw std::runtime_error("GridSimulator: scheduler returned an "
                               "incomplete schedule");
    }
    ++metrics.activations;
    total_batch += static_cast<double>(batch.size());

    // --- Admission rejections: dropped at ingress, never re-queued. ---
    for (std::size_t bj = 0; bj < batch.size(); ++bj) {
      if (plan[static_cast<JobId>(bj)] == Schedule::kRejected) {
        record_of(batch[bj]).rejected = true;
        ++metrics.jobs_rejected;
      }
    }

    // --- Commit: per machine, execute in SPT order (the convention the
    // evaluator optimizes; see core/evaluator.h). ---
    for (std::size_t bm = 0; bm < alive.size(); ++bm) {
      std::vector<std::pair<double, int>> spt;  // (etc, batch job index)
      for (std::size_t bj = 0; bj < batch.size(); ++bj) {
        if (plan[static_cast<JobId>(bj)] == static_cast<MachineId>(bm)) {
          spt.emplace_back(etc(static_cast<JobId>(bj),
                               static_cast<MachineId>(bm)),
                           static_cast<int>(bj));
        }
      }
      std::sort(spt.begin(), spt.end());
      auto& m = machines[static_cast<std::size_t>(alive[bm])];
      double cursor = std::max(m.free_at, now);
      for (const auto& [cost, bj] : spt) {
        auto& r = record_of(batch[static_cast<std::size_t>(bj)]);
        r.start = cursor;
        r.finish = cursor + cost;
        r.machine = static_cast<MachineId>(alive[static_cast<std::size_t>(bm)]);
        r.attempts += 1;
        cursor = r.finish;
        m.busy_until_now += cost;
        // queued_jobs only feeds failure re-queues; in streaming mode
        // without churn, tracking it would grow without bound.
        if (!streaming || churn_enabled) m.queued_jobs.push_back(r.id);
      }
      m.free_at = cursor;
    }

    if (horizon_passed && !config_.drain) break;
  }

  // --- Aggregate metrics over completed jobs (materialized: everything
  // finalizes here; streaming: flush whatever the in-flight window still
  // holds — jobs whose finish lies past the last activation, or that
  // never got scheduled). Same finalizer, same id order either way. ---
  if (!streaming) {
    metrics.peak_resident_jobs = static_cast<int>(records_.size());
    for (const auto& r : records_) {
      finalize_job(r, trace_[static_cast<std::size_t>(r.id)]);
    }
  } else {
    while (!live_records.empty()) {
      finalize_job(live_records.front(), live_jobs.front());
      live_records.pop_front();
      live_jobs.pop_front();
      ++first_live;
    }
  }
  if (metrics.jobs_completed > 0) {
    metrics.mean_flowtime = flow_sum / metrics.jobs_completed;
    metrics.mean_wait = wait_sum / metrics.jobs_completed;
    metrics.mean_slowdown = slowdown_sum / metrics.jobs_completed;
  }
  if (metrics.activations > 0) {
    metrics.mean_batch_size = total_batch / metrics.activations;
  }
  machine_busy_.clear();
  machine_mips_.clear();
  double busy = 0.0;
  for (const auto& m : machines) {
    busy += m.busy_until_now;
    machine_busy_.push_back(m.busy_until_now);
    machine_mips_.push_back(m.mips);
  }
  const double elapsed = std::max(metrics.makespan, config_.horizon);
  metrics.utilization =
      busy / (elapsed * static_cast<double>(config_.num_machines));
  return metrics;
}

}  // namespace gridsched
