#include "sim/batch_scheduler.h"

#include <numeric>

namespace gridsched {

BatchContext BatchContext::identity(const EtcMatrix& etc,
                                    std::uint64_t activation) {
  BatchContext ctx;
  ctx.job_ids.resize(static_cast<std::size_t>(etc.num_jobs()));
  std::iota(ctx.job_ids.begin(), ctx.job_ids.end(), 0);
  ctx.machine_ids.resize(static_cast<std::size_t>(etc.num_machines()));
  std::iota(ctx.machine_ids.begin(), ctx.machine_ids.end(), 0);
  ctx.activation = activation;
  return ctx;
}

HeuristicBatchScheduler::HeuristicBatchScheduler(HeuristicKind kind,
                                                 std::uint64_t seed)
    : kind_(kind), rng_(seed) {}

std::string_view HeuristicBatchScheduler::name() const noexcept {
  return heuristic_name(kind_);
}

Schedule HeuristicBatchScheduler::schedule_batch(const EtcMatrix& etc) {
  return construct_schedule(kind_, etc, rng_);
}

CmaBatchScheduler::CmaBatchScheduler(CmaConfig config, double budget_ms)
    : config_(std::move(config)) {
  config_.stop = StopCondition{.max_time_ms = budget_ms};
  config_.record_progress = false;
}

std::string_view CmaBatchScheduler::name() const noexcept { return "cMA"; }

Schedule CmaBatchScheduler::schedule_batch(const EtcMatrix& etc) {
  CmaConfig config = config_;
  config.seed = splitmix64(++activation_) ^ config_.seed;
  // Tiny batches cannot fill the default 5x5 mesh usefully, but the engine
  // handles them; single-job batches shortcut to the only sensible answer.
  if (etc.num_jobs() == 1) {
    Schedule s(1);
    s[0] = mct(etc)[0];
    return s;
  }
  Individual evolved = CellularMemeticAlgorithm(config).run(etc).best;
  const Individual fallback =
      make_individual(min_min(etc), etc, config.weights);
  return fallback.fitness < evolved.fitness ? fallback.schedule
                                            : std::move(evolved.schedule);
}

StruggleGaBatchScheduler::StruggleGaBatchScheduler(StruggleGaConfig config,
                                                   double budget_ms)
    : config_(std::move(config)) {
  config_.stop = StopCondition{.max_time_ms = budget_ms};
  config_.record_progress = false;
}

std::string_view StruggleGaBatchScheduler::name() const noexcept {
  return "StruggleGA";
}

Schedule StruggleGaBatchScheduler::schedule_batch(const EtcMatrix& etc) {
  StruggleGaConfig config = config_;
  config.seed = splitmix64(++activation_) ^ config_.seed;
  if (etc.num_jobs() == 1) {
    Schedule s(1);
    s[0] = mct(etc)[0];
    return s;
  }
  config.population_size = std::min(config.population_size,
                                    std::max(2, etc.num_jobs() * 4));
  return StruggleGa(config).run(etc).best.schedule;
}

}  // namespace gridsched
