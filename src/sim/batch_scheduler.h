// The batch-scheduler interface the dynamic grid uses.
//
// The paper's deployment story (abstract & conclusions): a dynamic
// scheduler is obtained by running the cMA "in batch mode for a very short
// time to schedule jobs arriving to the system since the last activation".
// GridSimulator hands each activation's pending jobs to a BatchScheduler as
// a fresh ETC sub-problem whose ready times encode the machines' current
// backlogs; any algorithm in the library can fill that role via the
// adapters below.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cma/cma.h"
#include "core/schedule.h"
#include "etc/etc_matrix.h"
#include "ga/struggle_ga.h"
#include "heuristics/constructive.h"

namespace gridsched {

/// Identity of a batch within the surrounding grid: which global job each
/// ETC row is, which grid machine each ETC column is, and the activation
/// counter. Stateless schedulers ignore it; stateful ones (the portfolio's
/// warm-start cache) use it to carry information across activations even as
/// jobs come and go and machines fail and recover.
struct BatchContext {
  std::vector<int> job_ids;      // batch row -> global job id
  std::vector<int> machine_ids;  // batch column -> global machine id
  std::uint64_t activation = 0;
  /// Class structure of the batch on class-structured grids (see
  /// SimConfig::num_job_classes); empty/zero on classless grids. A
  /// machine's hardware class is `machine_id % num_job_classes` — the
  /// simulator's interleaved-rack convention — so the sharded service's
  /// class-aware routing can see which shards hold a job's matched
  /// machines and correct its work estimates by `class_speedup`.
  std::vector<int> job_classes;  // batch row -> job class
  int num_job_classes = 0;
  double class_speedup = 1.0;
  /// MIPS rating per batch column (empty = unknown; identity contexts and
  /// hand-built batches leave it so). The sharded service's load-weighted
  /// split cuts balance summed MIPS instead of machine counts when the
  /// simulator reports them — a shard of 4 slow machines is NOT the equal
  /// of a shard of 4 fast ones.
  std::vector<double> machine_mips;
  /// Relative deadline per batch row: absolute deadline minus the
  /// activation time, so it compares directly against completion times
  /// computed from the batch's ready times. +infinity = no deadline for
  /// that row; empty = the run carries no QoS at all (see src/qos/qos.h).
  std::vector<double> job_deadlines;
  /// Cost rate per batch column (cost units per busy second, e.g.
  /// proportional to MIPS); empty = costs not modelled.
  std::vector<double> machine_cost_rates;
  /// Owning user per batch row (-1 = anonymous) and that user's total
  /// cost budget (-1 = unlimited); both empty when the run carries no
  /// per-user accounting. The service's AdmissionController charges each
  /// accepted job's cost estimate against the budget (src/qos/admission.h).
  std::vector<int> job_users;
  std::vector<double> job_budgets;

  /// Identity context for a standalone batch (row i = job i, column j =
  /// machine j) — what callers outside a simulator get by default.
  [[nodiscard]] static BatchContext identity(const EtcMatrix& etc,
                                             std::uint64_t activation = 0);
};

class BatchScheduler {
 public:
  virtual ~BatchScheduler() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Maps every job of `etc` (a batch of pending jobs x available machines,
  /// ready times already set) to a machine. Must return a complete schedule.
  [[nodiscard]] virtual Schedule schedule_batch(const EtcMatrix& etc) = 0;

  /// Context-aware variant the simulator calls; the default forwards to the
  /// context-free overload, so plain schedulers need not care.
  [[nodiscard]] virtual Schedule schedule_batch(const EtcMatrix& etc,
                                                const BatchContext& context) {
    (void)context;
    return schedule_batch(etc);
  }
};

/// Wraps a constructive heuristic (MCT, Min-Min, ...).
class HeuristicBatchScheduler final : public BatchScheduler {
 public:
  explicit HeuristicBatchScheduler(HeuristicKind kind,
                                   std::uint64_t seed = 1);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc) override;

 private:
  HeuristicKind kind_;
  Rng rng_;
};

/// Runs the cMA for a fixed short budget per activation. Each activation
/// uses a fresh seed derived from the base seed so repeated batches do not
/// replay the same stream. The result is ensembled with Min-Min (the
/// strongest constructive heuristic): whichever has the better batch
/// fitness wins, so a too-short budget can never make the dynamic
/// scheduler worse than its constructive fallback.
class CmaBatchScheduler final : public BatchScheduler {
 public:
  /// `budget_ms` overrides config.stop with a pure time bound.
  CmaBatchScheduler(CmaConfig config, double budget_ms);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc) override;

 private:
  CmaConfig config_;
  std::uint64_t activation_ = 0;
};

/// Struggle GA under a per-activation budget (baseline for examples).
class StruggleGaBatchScheduler final : public BatchScheduler {
 public:
  StruggleGaBatchScheduler(StruggleGaConfig config, double budget_ms);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc) override;

 private:
  StruggleGaConfig config_;
  std::uint64_t activation_ = 0;
};

}  // namespace gridsched
