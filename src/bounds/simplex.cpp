#include "bounds/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace gridsched::bounds {
namespace {

// Tolerances assume the caller feeds a well-scaled problem (coefficients
// O(1) — lower_bound.cpp normalizes by the largest ETC value before
// building its LP). Zero-pivot and reduced-cost cutoffs are the usual
// dense-simplex compromise between stalling and accepting noise pivots.
constexpr double kEps = 1e-9;
constexpr double kPhase1Tol = 1e-7;

/// Dense tableau: `rows` constraint rows plus two cost rows (phase-2 then
/// phase-1), `cols` variable columns plus the rhs column.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), cells_((rows + 2) * (cols + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return cells_[r * (cols_ + 1) + c]; }
  double& rhs(std::size_t r) { return at(r, cols_); }
  std::size_t cost_row() const { return rows_; }
  std::size_t phase1_row() const { return rows_ + 1; }

  /// Gauss-Jordan pivot on (pivot_row, pivot_col), cost rows included.
  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    const double p = at(pivot_row, pivot_col);
    assert(std::fabs(p) > 0.0);
    double* prow = &cells_[pivot_row * (cols_ + 1)];
    const double inv = 1.0 / p;
    for (std::size_t c = 0; c <= cols_; ++c) prow[c] *= inv;
    prow[pivot_col] = 1.0;  // kill roundoff on the pivot itself
    for (std::size_t r = 0; r < rows_ + 2; ++r) {
      if (r == pivot_row) continue;
      double* row = &cells_[r * (cols_ + 1)];
      const double factor = row[pivot_col];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c) row[c] -= factor * prow[c];
      row[pivot_col] = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cells_;
};

}  // namespace

SimplexResult solve_simplex(const LinearProgram& lp,
                            const SimplexOptions& options) {
  SimplexResult result;
  const std::size_t n = lp.objective.size();
  const std::size_t m = lp.constraints.size();

  // Column layout: [structural n][one slack/surplus per inequality]
  // [one artificial per >=/= row]. Count them first.
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const auto& con : lp.constraints) {
    assert(con.coeffs.size() == n);
    // Normalizing to rhs >= 0 can flip <= into >= and vice versa, so the
    // effective relation decides the extra columns.
    const bool flip = con.rhs < 0.0;
    Relation rel = con.relation;
    if (flip && rel == Relation::kLessEqual) rel = Relation::kGreaterEqual;
    else if (flip && rel == Relation::kGreaterEqual) rel = Relation::kLessEqual;
    if (rel != Relation::kEqual) ++num_slack;
    if (rel != Relation::kLessEqual) ++num_artificial;
  }

  const std::size_t num_real = n + num_slack;  // columns allowed in phase 2
  const std::size_t cols = num_real + num_artificial;
  Tableau t(m, cols);
  std::vector<std::size_t> basis(m);

  std::size_t next_slack = n;
  std::size_t next_artificial = num_real;
  for (std::size_t r = 0; r < m; ++r) {
    const auto& con = lp.constraints[r];
    const double sign = con.rhs < 0.0 ? -1.0 : 1.0;
    for (std::size_t c = 0; c < n; ++c) t.at(r, c) = sign * con.coeffs[c];
    t.rhs(r) = sign * con.rhs;
    Relation rel = con.relation;
    if (sign < 0.0 && rel == Relation::kLessEqual) rel = Relation::kGreaterEqual;
    else if (sign < 0.0 && rel == Relation::kGreaterEqual) {
      rel = Relation::kLessEqual;
    }
    if (rel == Relation::kLessEqual) {
      t.at(r, next_slack) = 1.0;
      basis[r] = next_slack++;
    } else {
      if (rel == Relation::kGreaterEqual) t.at(r, next_slack++) = -1.0;
      t.at(r, next_artificial) = 1.0;
      basis[r] = next_artificial++;
    }
  }

  // Phase-2 cost row starts as c (reduced costs once basic columns are
  // priced out below); phase-1 cost is the sum of artificials.
  for (std::size_t c = 0; c < n; ++c) t.at(t.cost_row(), c) = lp.objective[c];
  for (std::size_t c = num_real; c < cols; ++c) t.at(t.phase1_row(), c) = 1.0;

  // Price out the starting basis from both cost rows. Slack basics have
  // zero cost in both; artificial basics cost 1 in phase 1.
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] >= num_real) {
      for (std::size_t c = 0; c <= cols; ++c) {
        t.at(t.phase1_row(), c) -= t.at(r, c);
      }
    }
  }

  // Bland's rule iteration over the given cost row; `limit` bars columns
  // >= limit from entering (used to freeze artificials in phase 2).
  auto iterate = [&](std::size_t cost_row, std::size_t limit) -> SimplexStatus {
    for (;;) {
      // Entering: smallest column index with negative reduced cost.
      std::size_t entering = limit;
      for (std::size_t c = 0; c < limit; ++c) {
        if (t.at(cost_row, c) < -kEps) {
          entering = c;
          break;
        }
      }
      if (entering == limit) return SimplexStatus::kOptimal;

      // Leaving: minimum ratio; ties by smallest basis variable index.
      std::size_t leaving = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        const double a = t.at(r, entering);
        if (a <= kEps) continue;
        const double ratio = t.rhs(r) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leaving == m || basis[r] < basis[leaving]))) {
          best_ratio = ratio;
          leaving = r;
        }
      }
      if (leaving == m) return SimplexStatus::kUnbounded;

      if (result.pivots >= options.max_pivots) {
        return SimplexStatus::kPivotLimit;
      }
      t.pivot(leaving, entering);
      basis[leaving] = entering;
      ++result.pivots;
    }
  };

  // Phase 1: drive the artificials to zero.
  if (num_artificial > 0) {
    const SimplexStatus phase1 = iterate(t.phase1_row(), cols);
    if (phase1 != SimplexStatus::kOptimal) {
      // Unbounded cannot happen with the bounded-below phase-1 objective.
      result.status = phase1 == SimplexStatus::kUnbounded
                          ? SimplexStatus::kInfeasible
                          : phase1;
      return result;
    }
    if (-t.rhs(t.phase1_row()) > kPhase1Tol) {
      result.status = SimplexStatus::kInfeasible;
      return result;
    }
  }

  // Phase 2 on the real objective. Artificial columns stay barred; any
  // artificial still basic sits at value ~0 and is harmless.
  result.status = iterate(t.cost_row(), num_real);
  if (result.status != SimplexStatus::kOptimal) return result;

  result.objective = -t.rhs(t.cost_row());
  result.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) result.x[basis[r]] = t.rhs(r);
  }
  return result;
}

}  // namespace gridsched::bounds
