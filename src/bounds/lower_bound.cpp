#include "bounds/lower_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bounds/simplex.h"
#include "core/bounds.h"

namespace gridsched::bounds {
namespace {

/// Builds the fractional-assignment LP. Variables: x[j][m] at j*m_count+k,
/// then T last. All data is scaled by `inv_scale` so the simplex works on
/// O(1) numbers whatever the ETC magnitudes (its tolerances are absolute).
LinearProgram build_lp(const EtcMatrix& etc, double inv_scale) {
  const int n = etc.num_jobs();
  const int m = etc.num_machines();
  const std::size_t num_vars = static_cast<std::size_t>(n) * m + 1;
  const std::size_t t_var = num_vars - 1;

  LinearProgram lp;
  lp.objective.assign(num_vars, 0.0);
  lp.objective[t_var] = 1.0;
  lp.constraints.reserve(static_cast<std::size_t>(n + m));

  for (int j = 0; j < n; ++j) {
    LinearConstraint con;
    con.coeffs.assign(num_vars, 0.0);
    for (int k = 0; k < m; ++k) {
      con.coeffs[static_cast<std::size_t>(j) * m + k] = 1.0;
    }
    con.relation = Relation::kEqual;
    con.rhs = 1.0;
    lp.constraints.push_back(std::move(con));
  }
  for (int k = 0; k < m; ++k) {
    // T - sum_j ETC[j][k]·x[j][k] >= ready[k]
    LinearConstraint con;
    con.coeffs.assign(num_vars, 0.0);
    for (int j = 0; j < n; ++j) {
      con.coeffs[static_cast<std::size_t>(j) * m + k] = -etc(j, k) * inv_scale;
    }
    con.coeffs[t_var] = 1.0;
    con.relation = Relation::kGreaterEqual;
    con.rhs = etc.ready_time(k) * inv_scale;
    lp.constraints.push_back(std::move(con));
  }
  return lp;
}

/// Dense tableau footprint of the LP above, in cells (see simplex.cpp:
/// rows + 2 cost rows by structural + slack + artificial + rhs columns).
std::int64_t tableau_cells(const EtcMatrix& etc) {
  const std::int64_t n = etc.num_jobs();
  const std::int64_t m = etc.num_machines();
  const std::int64_t rows = n + m + 2;
  const std::int64_t cols = (n * m + 1) + m + (n + m) + 1;
  return rows * cols;
}

}  // namespace

MakespanBoundResult makespan_bound(const EtcMatrix& etc,
                                   const LpOptions& options) {
  MakespanBoundResult result;
  result.cheap = makespan_lower_bound(etc);
  result.value = result.cheap;

  if (!options.enabled || options.max_pivots <= 0) {
    result.lp_status = LpBoundStatus::kDisabled;
    return result;
  }
  if (tableau_cells(etc) > options.max_tableau_cells) {
    result.lp_status = LpBoundStatus::kTooLarge;
    return result;
  }

  // Scale so the largest coefficient is 1.0: the simplex tolerances are
  // absolute, and Braun hi-hi instances reach ETC values of ~3e6.
  double scale = 0.0;
  for (int j = 0; j < etc.num_jobs(); ++j) {
    const auto row = etc.row(j);
    for (const double v : row) scale = std::max(scale, v);
  }
  for (int k = 0; k < etc.num_machines(); ++k) {
    scale = std::max(scale, etc.ready_time(k));
  }
  if (scale <= 0.0) {  // all-zero instance: the cheap bound (0) is exact
    result.lp_status = LpBoundStatus::kOptimal;
    return result;
  }

  SimplexOptions simplex_options;
  simplex_options.max_pivots = options.max_pivots;
  const SimplexResult lp =
      solve_simplex(build_lp(etc, 1.0 / scale), simplex_options);
  result.lp_pivots = lp.pivots;
  if (lp.status != SimplexStatus::kOptimal) {
    // Infeasible/unbounded cannot happen for this LP (x = any schedule,
    // T large enough is feasible; T >= 0 bounds it below); treat any
    // non-optimal outcome as "budget exhausted, no LP bound".
    result.lp_status = LpBoundStatus::kPivotLimit;
    return result;
  }
  result.lp_status = LpBoundStatus::kOptimal;
  result.lp = lp.objective * scale;
  result.value = std::max(result.value, result.lp);
  return result;
}

double optimality_gap_pct(double objective, double lower_bound) noexcept {
  if (!(lower_bound > 0.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return 100.0 * (objective - lower_bound) / lower_bound;
}

}  // namespace gridsched::bounds
