// A small dense two-phase simplex solver (minimization, x >= 0).
//
// Exists so the library can compute LP-relaxation lower bounds
// (bounds/lower_bound.h) without an external solver dependency — the
// container this builds in is offline. It is a textbook tableau
// implementation tuned for determinism, not for sparse million-row LPs:
//
//   * Bland's rule for both the entering and the leaving variable
//     (smallest index wins every tie). This guarantees termination
//     without perturbation tricks AND makes the pivot sequence — and
//     therefore the returned optimum — a pure function of the input,
//     bitwise-stable across runs (tests/test_bounds.cpp pins this).
//   * A pivot budget instead of open-ended iteration: a caller that uses
//     the optimum as a *bound* must know whether the solve finished
//     (a truncated minimization is NOT a valid lower bound), so running
//     out of budget is a first-class status, never a silent best-effort.
//
// Phase 1 minimizes the sum of artificial variables to find a feasible
// basis; artificial columns are barred from re-entering in phase 2.
#pragma once

#include <cstdint>
#include <vector>

namespace gridsched::bounds {

enum class SimplexStatus { kOptimal, kInfeasible, kUnbounded, kPivotLimit };

struct SimplexOptions {
  /// Total pivot budget across both phases. Bland's rule terminates
  /// finitely anyway; the cap bounds the worst case wall-clock.
  int max_pivots = 20'000;
};

struct SimplexResult {
  SimplexStatus status = SimplexStatus::kPivotLimit;
  /// c·x at the final basis. Only meaningful when status == kOptimal.
  double objective = 0.0;
  /// Structural variable values (empty unless status == kOptimal).
  std::vector<double> x;
  int pivots = 0;
};

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

struct LinearConstraint {
  std::vector<double> coeffs;  // one per structural variable
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// minimize objective·x subject to the constraints and x >= 0.
struct LinearProgram {
  std::vector<double> objective;
  std::vector<LinearConstraint> constraints;
};

[[nodiscard]] SimplexResult solve_simplex(const LinearProgram& lp,
                                          const SimplexOptions& options = {});

}  // namespace gridsched::bounds
