// Optimality-gap machinery: the strongest makespan lower bound the
// library can compute on an ETC instance, and the gap helper every bench
// reports through obs::BenchReport.
//
// Layering: `core/bounds.h` owns the cheap closed-form floors (ready, job
// and load bounds — O(nm), always computed). This module adds the LP
// relaxation of the assignment problem:
//
//   minimize T
//   s.t.  sum_m x[j][m] = 1                      for every job j
//         ready[m] + sum_j ETC[j][m]·x[j][m] <= T  for every machine m
//         x >= 0
//
// i.e. R||Cmax with jobs allowed to split fractionally across machines.
// Every real schedule is a feasible {0,1} point, so the LP optimum is a
// valid lower bound — and a much tighter one than the load bound whenever
// machine speeds are heterogeneous (docs/bounds.md works the math and
// records measured gaps). Two things are easy to get wrong here:
//
//   * A truncated simplex run is NOT a bound. A suboptimal feasible T
//     only says "a fractional schedule this good exists", which can
//     exceed the integer optimum. The LP value is therefore used only
//     when the solver proves optimality within its budget; otherwise the
//     result falls back to the cheap floors alone (lp_status records
//     why).
//   * The LP can sit BELOW the per-job bound (a single job splits across
//     machines, so max_j min_m(ready+ETC) no longer binds it). The final
//     bound is max(cheap, LP), never the LP alone.
//
// The LP costs O((n+m)·(nm)) memory and a polynomial pivot count, so it
// sits behind a budget knob (`LpOptions`) and is meant for bench-time gap
// reporting, not for the scheduling hot path.
#pragma once

#include <cstdint>

#include "etc/etc_matrix.h"

namespace gridsched::bounds {

/// Budget knob for the LP-relaxation bound.
struct LpOptions {
  bool enabled = true;
  /// Simplex pivot budget (both phases). Exceeding it discards the LP
  /// value — see the header comment — and reports kPivotLimit.
  int max_pivots = 20'000;
  /// Skip instances whose dense tableau would exceed this many cells
  /// (8M cells = 64 MB). 512 jobs x 16 machines needs ~4.6M.
  std::int64_t max_tableau_cells = 8'000'000;
};

enum class LpBoundStatus { kOptimal, kPivotLimit, kTooLarge, kDisabled };

struct MakespanBoundResult {
  /// The bound to use: max of every valid component below.
  double value = 0.0;
  /// max(ready, job, load) from core/bounds.h. Always valid.
  double cheap = 0.0;
  /// LP-relaxation optimum; 0.0 unless lp_status == kOptimal.
  double lp = 0.0;
  LpBoundStatus lp_status = LpBoundStatus::kDisabled;
  int lp_pivots = 0;
};

[[nodiscard]] MakespanBoundResult makespan_bound(const EtcMatrix& etc,
                                                 const LpOptions& options = {});

/// The gap every bench reports: 100·(objective − lb)/lb. Returns NaN when
/// lb <= 0 (obs::BenchReport serializes non-finite metrics as null).
[[nodiscard]] double optimality_gap_pct(double objective,
                                        double lower_bound) noexcept;

}  // namespace gridsched::bounds
