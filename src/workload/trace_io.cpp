#include "workload/trace_io.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "common/csv.h"

namespace gridsched {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace line " + std::to_string(line) + ": " + what);
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    fields.push_back(trimmed(line.substr(start, comma - start)));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return fields;
}

double parse_double(std::string_view field, std::size_t line,
                    const char* column) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    fail(line, std::string(column) + " is not a number: '" +
                   std::string(field) + "'");
  }
  return value;
}

int parse_optional_int(std::string_view field, std::size_t line,
                       const char* column) {
  if (field.empty()) return -1;  // unset
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    fail(line, std::string(column) + " is not an integer: '" +
                   std::string(field) + "'");
  }
  if (value < -1) fail(line, std::string(column) + " must be >= -1");
  return value;
}

/// QoS doubles (deadline, budget): an empty field is the "none" sentinel
/// -1; a present field must be finite and >= 0, NaN rejected like the
/// mandatory columns.
double parse_optional_double(std::string_view field, std::size_t line,
                             const char* column) {
  if (field.empty()) return -1.0;  // unset
  const double value = parse_double(field, line, column);
  if (!(value >= 0) || !std::isfinite(value)) {
    fail(line, std::string(column) + " must be finite and >= 0 (or empty)");
  }
  return value;
}

/// A header row is any row whose first field is not parseable as a
/// double. Parsing (rather than sniffing the first character) keeps
/// "nan"/"inf" and empty fields on the data path, where the validator
/// rejects them with a line number instead of silently eating the row.
bool looks_like_header(std::string_view first_field) {
  if (first_field.empty()) return false;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(
      first_field.data(), first_field.data() + first_field.size(), value);
  return ec != std::errc{} || ptr != first_field.data() + first_field.size();
}

}  // namespace

std::vector<TraceJob> read_trace(std::istream& in) {
  std::vector<TraceJob> jobs;
  std::string line;
  std::size_t line_no = 0;
  std::size_t columns = 0;  // fixed by the header or the first data row
  bool seen_rows = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view content = trimmed(line);
    if (content.empty() || content.front() == '#' || content.front() == ';') {
      continue;
    }
    const std::vector<std::string_view> fields = split_fields(content);
    if (fields.size() < 2 || fields.size() > 6) {
      fail(line_no, "expected 2 to 6 columns, got " +
                        std::to_string(fields.size()));
    }
    if (!seen_rows && looks_like_header(fields[0])) {
      seen_rows = true;
      columns = fields.size();
      continue;
    }
    if (columns == 0) columns = fields.size();
    seen_rows = true;
    if (fields.size() != columns) {
      fail(line_no, "row has " + std::to_string(fields.size()) +
                        " columns, trace has " + std::to_string(columns));
    }
    TraceJob job;
    job.arrival = parse_double(fields[0], line_no, "arrival");
    job.workload_mi = parse_double(fields[1], line_no, "workload_mi");
    if (fields.size() >= 3) {
      job.job_class = parse_optional_int(fields[2], line_no, "class");
    }
    if (fields.size() >= 4) {
      job.deadline = parse_optional_double(fields[3], line_no, "deadline");
    }
    if (fields.size() >= 5) {
      job.budget = parse_optional_double(fields[4], line_no, "budget");
    }
    if (fields.size() >= 6) {
      job.user = parse_optional_int(fields[5], line_no, "user");
    }
    // Negated comparisons so NaN (which from_chars happily parses) is
    // rejected too — a NaN arrival would break the sort's strict weak
    // ordering and strand the job outside every batch.
    if (!(job.arrival >= 0) || !std::isfinite(job.arrival)) {
      fail(line_no, "arrival must be finite and >= 0");
    }
    if (!(job.workload_mi > 0) || !std::isfinite(job.workload_mi)) {
      fail(line_no, "workload_mi must be finite and > 0");
    }
    jobs.push_back(job);
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.arrival < b.arrival;
                   });
  return jobs;
}

std::vector<TraceJob> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace_file: cannot open " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, std::span<const TraceJob> jobs) {
  // Optional columns form a prefix chain: emit every column up to the
  // last one any job carries, so each row has the same column count and
  // an empty field unambiguously means "unset".
  const auto any = [&](auto pred) {
    return std::any_of(jobs.begin(), jobs.end(), pred);
  };
  const bool with_user = any([](const TraceJob& j) { return j.user >= 0; });
  const bool with_budget =
      with_user || any([](const TraceJob& j) { return j.budget >= 0; });
  const bool with_deadline =
      with_budget || any([](const TraceJob& j) { return j.deadline >= 0; });
  const bool with_class =
      with_deadline || any([](const TraceJob& j) { return j.job_class >= 0; });
  out << "# gridsched trace v1, " << jobs.size() << " jobs\n";
  out << "arrival,workload_mi";
  if (with_class) out << ",class";
  if (with_deadline) out << ",deadline";
  if (with_budget) out << ",budget";
  if (with_user) out << ",user";
  out << '\n';
  for (const TraceJob& job : jobs) {
    out << CsvWriter::field(job.arrival) << ','
        << CsvWriter::field(job.workload_mi);
    if (with_class) {
      out << ',';
      if (job.job_class >= 0) out << job.job_class;
    }
    if (with_deadline) {
      out << ',';
      if (job.deadline >= 0) out << CsvWriter::field(job.deadline);
    }
    if (with_budget) {
      out << ',';
      if (job.budget >= 0) out << CsvWriter::field(job.budget);
    }
    if (with_user) {
      out << ',';
      if (job.user >= 0) out << job.user;
    }
    out << '\n';
  }
}

void write_trace_file(const std::string& path,
                      std::span<const TraceJob> jobs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
  write_trace(out, jobs);
}

}  // namespace gridsched
