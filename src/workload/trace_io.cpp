#include "workload/trace_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "common/csv.h"
#include "workload/trace_parse.h"

namespace gridsched {
namespace {

using trace_detail::fail;
using trace_detail::looks_like_header;
using trace_detail::parse_double;
using trace_detail::parse_optional_double;
using trace_detail::parse_optional_int;
using trace_detail::read_bounded_line;
using trace_detail::split_fields;
using trace_detail::strip_bom;
using trace_detail::trimmed;

/// Shared per-line state machine used by read_trace and
/// StreamingTraceReader: skips blank/comment lines, recognizes the
/// optional header, pins the column count on the first row, and parses
/// + validates one TraceJob per data row. Errors carry the physical
/// line number handed in by the caller.
class TraceRowParser {
 public:
  /// Returns true and fills `job` when `raw` is a data row.
  bool parse(std::string_view raw, std::size_t line_no, TraceJob& job) {
    const std::string_view content = trimmed(raw);
    if (content.empty() || content.front() == '#' || content.front() == ';') {
      return false;
    }
    const std::vector<std::string_view> fields = split_fields(content);
    if (fields.size() < 2 || fields.size() > 6) {
      fail(line_no,
           "expected 2 to 6 columns, got " + std::to_string(fields.size()));
    }
    if (!seen_rows_ && looks_like_header(fields[0])) {
      seen_rows_ = true;
      columns_ = fields.size();
      return false;
    }
    if (columns_ == 0) columns_ = fields.size();
    seen_rows_ = true;
    if (fields.size() != columns_) {
      fail(line_no, "row has " + std::to_string(fields.size()) +
                        " columns, trace has " + std::to_string(columns_));
    }
    job = TraceJob{};
    job.arrival = parse_double(fields[0], line_no, "arrival");
    job.workload_mi = parse_double(fields[1], line_no, "workload_mi");
    if (fields.size() >= 3) {
      job.job_class = parse_optional_int(fields[2], line_no, "class");
    }
    if (fields.size() >= 4) {
      job.deadline = parse_optional_double(fields[3], line_no, "deadline");
    }
    if (fields.size() >= 5) {
      job.budget = parse_optional_double(fields[4], line_no, "budget");
    }
    if (fields.size() >= 6) {
      job.user = parse_optional_int(fields[5], line_no, "user");
    }
    // Negated comparisons so NaN (which from_chars happily parses) is
    // rejected too — a NaN arrival would break the sort's strict weak
    // ordering and strand the job outside every batch.
    if (!(job.arrival >= 0) || !std::isfinite(job.arrival)) {
      fail(line_no, "arrival must be finite and >= 0");
    }
    if (!(job.workload_mi > 0) || !std::isfinite(job.workload_mi)) {
      fail(line_no, "workload_mi must be finite and > 0");
    }
    return true;
  }

  /// Column count fixed by the header or first data row (0 before either).
  [[nodiscard]] std::size_t columns() const noexcept { return columns_; }

 private:
  std::size_t columns_ = 0;
  bool seen_rows_ = false;
};

}  // namespace

std::vector<TraceJob> read_trace(std::istream& in) {
  std::vector<TraceJob> jobs;
  std::string line;
  std::size_t line_no = 0;
  TraceRowParser parser;
  while (read_bounded_line(in, line, line_no + 1)) {
    ++line_no;
    const std::string_view raw =
        line_no == 1 ? strip_bom(line) : std::string_view(line);
    TraceJob job;
    if (parser.parse(raw, line_no, job)) jobs.push_back(job);
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.arrival < b.arrival;
                   });
  return jobs;
}

std::vector<TraceJob> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace_file: cannot open " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, std::span<const TraceJob> jobs) {
  // Optional columns form a prefix chain: emit every column up to the
  // last one any job carries, so each row has the same column count and
  // an empty field unambiguously means "unset".
  const auto any = [&](auto pred) {
    return std::any_of(jobs.begin(), jobs.end(), pred);
  };
  const bool with_user = any([](const TraceJob& j) { return j.user >= 0; });
  const bool with_budget =
      with_user || any([](const TraceJob& j) { return j.budget >= 0; });
  const bool with_deadline =
      with_budget || any([](const TraceJob& j) { return j.deadline >= 0; });
  const bool with_class =
      with_deadline || any([](const TraceJob& j) { return j.job_class >= 0; });
  out << "# gridsched trace v1, " << jobs.size() << " jobs\n";
  out << "arrival,workload_mi";
  if (with_class) out << ",class";
  if (with_deadline) out << ",deadline";
  if (with_budget) out << ",budget";
  if (with_user) out << ",user";
  out << '\n';
  for (const TraceJob& job : jobs) {
    out << CsvWriter::field(job.arrival) << ','
        << CsvWriter::field(job.workload_mi);
    if (with_class) {
      out << ',';
      if (job.job_class >= 0) out << job.job_class;
    }
    if (with_deadline) {
      out << ',';
      if (job.deadline >= 0) out << CsvWriter::field(job.deadline);
    }
    if (with_budget) {
      out << ',';
      if (job.budget >= 0) out << CsvWriter::field(job.budget);
    }
    if (with_user) {
      out << ',';
      if (job.user >= 0) out << job.user;
    }
    out << '\n';
  }
}

void write_trace_file(const std::string& path,
                      std::span<const TraceJob> jobs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
  write_trace(out, jobs);
}

// ---------------------------------------------------------------------------
// StreamingTraceReader

struct StreamingTraceReader::Impl {
  std::istream& in;
  std::string name;
  TraceRowParser parser;
  trace_detail::ReorderBuffer buffer;
  std::string line;
  std::size_t line_no = 0;
  bool exhausted = false;

  Impl(std::istream& stream, std::size_t reorder_window, std::string label)
      : in(stream), name(std::move(label)), buffer(reorder_window) {}

  /// Reads one physical line; inserts a data row into the sorted buffer.
  /// Returns false at EOF.
  bool read_row() {
    if (exhausted) return false;
    if (!read_bounded_line(in, line, line_no + 1)) {
      exhausted = true;
      return false;
    }
    ++line_no;
    const std::string_view raw =
        line_no == 1 ? strip_bom(line) : std::string_view(line);
    TraceJob job;
    if (parser.parse(raw, line_no, job)) buffer.insert(job, line_no);
    return true;
  }

  /// Tops the buffer up past the reorder window (or to EOF), so the
  /// front row is provably the earliest remaining in the whole stream.
  void fill() {
    while (!exhausted && buffer.size() <= buffer.window()) read_row();
  }
};

StreamingTraceReader::StreamingTraceReader(std::istream& in,
                                           std::size_t reorder_window,
                                           std::string name)
    : impl_(std::make_unique<Impl>(in, reorder_window, std::move(name))) {
  // Prime to the first data row so header/column errors surface here,
  // and qos() is answerable before the first next_chunk call.
  while (!impl_->exhausted && impl_->buffer.empty()) impl_->read_row();
}

StreamingTraceReader::~StreamingTraceReader() = default;

std::string_view StreamingTraceReader::name() const noexcept {
  return impl_->name;
}

bool StreamingTraceReader::next_chunk(double until,
                                      std::vector<TraceJob>& out) {
  for (;;) {
    impl_->fill();
    if (impl_->buffer.empty()) return false;
    if (impl_->buffer.front().arrival > until) return true;
    out.push_back(impl_->buffer.pop());
  }
}

StreamQos StreamingTraceReader::qos() const noexcept {
  // Column presence, not per-row values: a 4-column trace declares the
  // deadline regime even when every row's deadline is unset. An
  // all-unset declared column is behaviorally inert in the simulator
  // (infinite slack, zero deadline_jobs), pinned by test.
  StreamQos qos;
  qos.deadlines = impl_->parser.columns() >= 4;
  qos.budgets = impl_->parser.columns() >= 5;
  return qos;
}

std::size_t StreamingTraceReader::peak_buffered() const noexcept {
  return impl_->buffer.peak();
}

// ---------------------------------------------------------------------------
// Churn sidecar trace

std::vector<ChurnEvent> read_churn_trace(std::istream& in) {
  std::vector<ChurnEvent> events;
  std::string line;
  std::size_t line_no = 0;
  bool seen_rows = false;
  while (read_bounded_line(in, line, line_no + 1)) {
    ++line_no;
    const std::string_view raw =
        line_no == 1 ? strip_bom(line) : std::string_view(line);
    const std::string_view content = trimmed(raw);
    if (content.empty() || content.front() == '#' || content.front() == ';') {
      continue;
    }
    const std::vector<std::string_view> fields = split_fields(content);
    if (fields.size() != 3) {
      fail(line_no, "expected 3 columns (machine,fail_at,repair_at), got " +
                        std::to_string(fields.size()));
    }
    if (!seen_rows && looks_like_header(fields[0])) {
      seen_rows = true;
      continue;
    }
    seen_rows = true;
    ChurnEvent event;
    event.machine = parse_optional_int(fields[0], line_no, "machine");
    if (event.machine < 0) fail(line_no, "machine must be >= 0");
    event.fail_at = parse_double(fields[1], line_no, "fail_at");
    event.repair_at = parse_double(fields[2], line_no, "repair_at");
    if (!(event.fail_at >= 0) || !std::isfinite(event.fail_at)) {
      fail(line_no, "fail_at must be finite and >= 0");
    }
    if (!(event.repair_at >= event.fail_at) ||
        !std::isfinite(event.repair_at)) {
      fail(line_no, "repair_at must be finite and >= fail_at");
    }
    // Recorded order is the replay order — deliberately no sort.
    events.push_back(event);
  }
  return events;
}

std::vector<ChurnEvent> read_churn_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_churn_trace_file: cannot open " + path);
  }
  return read_churn_trace(in);
}

void write_churn_trace(std::ostream& out, std::span<const ChurnEvent> events) {
  out << "# gridsched churn trace v1, " << events.size() << " events\n";
  out << "machine,fail_at,repair_at\n";
  for (const ChurnEvent& event : events) {
    out << event.machine << ',' << CsvWriter::field(event.fail_at) << ','
        << CsvWriter::field(event.repair_at) << '\n';
  }
}

void write_churn_trace_file(const std::string& path,
                            std::span<const ChurnEvent> events) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_churn_trace_file: cannot open " + path);
  }
  write_churn_trace(out, events);
}

}  // namespace gridsched
