// Standard Workload Format (SWF) importer: replays published
// supercomputer/grid logs (parallelworkloads.huji.ac.il style) through
// the simulator by mapping SWF's 18 whitespace-separated columns onto
// TraceJob. See docs/workloads.md for the full mapping table.
//
//     ; comment lines start with ';' (the SWF header block)
//     1  0  -1  120  4 -1 -1  4  600 -1  1  12  3  -1  2  1  -1 -1
//     |  |      |    |         |  |          |           |  |
//     job submit run procs    req requested user        queue partition
//
// Mapping (SwfMapping controls the knobs; -1 sentinels always mean
// "unset" and map to the TraceJob unset sentinels):
//
//   submit (col 2)          -> arrival, optionally rebased so the first
//                              job arrives at 0
//   run time (col 4)        -> workload_mi = run_seconds * reference_mips
//   queue or partition      -> job_class (unmapped classes stay -1 and
//   (cols 15/16)               the simulator hashes one when classes are
//                              enabled)
//   requested time (col 9)  -> absolute deadline = arrival + requested
//                              (SWF's user-declared runtime bound is the
//                              natural deadline of the QoS regime)
//   user id (col 12)        -> user (budget stays -1: SWF carries none)
//
// Rows that cannot become jobs — submit < 0 or run time <= 0 (cancelled
// or failed jobs with unknown runtime) — are SKIPPED and counted, not
// errors: every published log contains them. Structurally malformed
// rows (wrong column count, unparsable numbers) throw
// std::runtime_error naming the physical line, exactly like read_trace.
// Robustness (CRLF, BOM, bounded lines, final row without newline) is
// shared with trace_io.h.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "workload/workload_source.h"

namespace gridsched {

/// Knobs for the SWF -> TraceJob mapping. Defaults suit the bench and
/// tests: queue-derived classes, deadlines from requested time, arrivals
/// rebased to 0.
struct SwfMapping {
  enum class ClassFrom { kNone, kQueue, kPartition };

  /// MIPS of the reference machine the log's runtimes are assumed to
  /// have run on: workload_mi = run_seconds * reference_mips. Must be
  /// > 0 (validated at read time).
  double reference_mips = 1000.0;
  ClassFrom class_from = ClassFrom::kQueue;
  /// requested time (col 9) -> deadline = arrival + requested.
  bool map_deadline = true;
  /// user id (col 12) -> TraceJob::user.
  bool map_user = true;
  /// Subtract the first emitted job's submit time, so the trace starts
  /// at 0 regardless of the log's epoch. Later rows submitted before
  /// that first job clamp to arrival 0 (real logs are submit-sorted, so
  /// this is rare and only ever a few seconds).
  bool rebase_arrivals = true;
};

/// Materializing import. `skipped_rows`, when non-null, receives the
/// number of structurally valid rows dropped by the skip rules above.
/// Output is stably sorted by arrival like read_trace.
[[nodiscard]] std::vector<TraceJob> read_swf(std::istream& in,
                                             const SwfMapping& mapping = {},
                                             std::size_t* skipped_rows =
                                                 nullptr);

/// File variant; also throws when the file cannot be opened.
[[nodiscard]] std::vector<TraceJob> read_swf_file(const std::string& path,
                                                  const SwfMapping& mapping =
                                                      {},
                                                  std::size_t* skipped_rows =
                                                      nullptr);

/// Streaming SWF reader: same mapping, O(reorder_window) memory — the
/// path that replays a multi-million-job log without materializing it.
/// Ordering contract matches StreamingTraceReader (bounded reorder
/// window over arrival, ties keep file order, out-of-order beyond the
/// window throws naming the line).
class SwfStreamReader final : public StreamingWorkloadSource {
 public:
  /// The stream must outlive the reader. Reads up to the first emitted
  /// job eagerly so structural errors surface at construction.
  explicit SwfStreamReader(std::istream& in, SwfMapping mapping = {},
                           std::size_t reorder_window = 1024,
                           std::string name = "swf_stream");
  ~SwfStreamReader() override;

  SwfStreamReader(const SwfStreamReader&) = delete;
  SwfStreamReader& operator=(const SwfStreamReader&) = delete;

  [[nodiscard]] std::string_view name() const noexcept override;
  bool next_chunk(double until, std::vector<TraceJob>& out) override;
  /// Declared from the mapping, not the rows: deadlines iff
  /// map_deadline, budgets iff map_user (SWF has no budget column, but
  /// mapped user ids feed BatchContext::job_users, which the
  /// materialized QoS scan counts as budget context). A declared
  /// but all-unset deadline column is behaviorally inert (test-pinned),
  /// so this matches the materialized path whenever any row carries a
  /// requested time.
  [[nodiscard]] StreamQos qos() const noexcept override;

  /// Skip-rule drops seen SO FAR (grows as the stream drains).
  [[nodiscard]] std::size_t skipped_rows() const noexcept;
  /// Largest number of rows ever buffered at once — the memory bound.
  [[nodiscard]] std::size_t peak_buffered() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Writes one 18-column SWF row with the columns gridsched maps filled
/// in and every other column -1. Used by the bench's synthetic
/// million-job generator and by tests; pairs with read_swf/
/// SwfStreamReader for round-trips.
void write_swf_row(std::ostream& out, long job_id, double submit_seconds,
                   double run_seconds, int procs, int user, int queue,
                   double requested_seconds);

}  // namespace gridsched
