// Trace serialization: the on-disk workload format.
//
// A gridsched trace is a CSV file with one row per job (see
// docs/workloads.md for the full spec):
//
//     # comment lines start with '#' or ';'
//     arrival,workload_mi,class,deadline,budget,user
//     0.42,22026.465794806718,1,180.5,1000,3
//     1.07,18033.744927828524,,,,
//
// The header row is optional (a row whose first field parses as a double
// is data). Columns beyond the first two are optional as a prefix chain:
// a trace has 2 to 6 columns, and a trailing column is emitted only when
// at least one job carries the field. `class`: empty or -1 means
// "unclassed" (the simulator hashes a class when classes are enabled).
// `deadline`/`budget` (QoS, src/qos/qos.h): empty means none/unlimited;
// `user`: empty means anonymous. Rows are stably sorted by arrival on
// read — real cluster logs interleave slightly — so job ids always follow
// arrival order. Doubles are written with round-trip precision: a
// recorded run replayed through TraceWorkloadSource reproduces the
// original per-job records bit for bit (enforced by
// tests/test_workload.cpp and the churn round-trip in tests/test_qos.cpp).
//
// Robustness (shared by every reader here, the streaming reader, and the
// SWF importer in swf_io.h): CRLF line endings are stripped (real
// SWF/cluster logs are DOS-formatted), a final row without a trailing
// newline parses, a UTF-8 byte-order mark on the first line is ignored,
// and a line longer than kMaxTraceLineBytes throws naming the line —
// bounded reads, so a corrupt multi-gigabyte "line" cannot balloon a
// streaming replay. Error messages always name the PHYSICAL line number
// (blank, comment and header lines advance the counter), so "trace line
// N" is the editor's line N.
//
// `read_churn_trace`/`write_churn_trace` serialize the machine-failure
// sidecar stream (ChurnEvent): `machine,fail_at,repair_at` rows, comment
// and optional-header conventions as above, but NO sorting — the
// simulator replays events in recorded order (per-activation machine
// order), and reordering them would change the re-queue order.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "workload/workload_source.h"

namespace gridsched {

/// Longest accepted physical line in any trace/churn/SWF input. A real
/// log row is a few hundred bytes; anything beyond this is corruption
/// (or a binary file) and throws instead of being buffered.
inline constexpr std::size_t kMaxTraceLineBytes = 64 * 1024;

/// Parses a trace. Throws std::runtime_error naming the offending line on
/// malformed input (wrong column count, unparsable numbers, negative
/// arrivals, non-positive sizes). An input with no data rows is a valid
/// empty trace.
[[nodiscard]] std::vector<TraceJob> read_trace(std::istream& in);

/// File variant; also throws when the file cannot be opened.
[[nodiscard]] std::vector<TraceJob> read_trace_file(const std::string& path);

/// Writes jobs in the format above, with round-trip double precision.
/// Optional columns (class, deadline, budget, user) are emitted up to the
/// last one some job actually carries; earlier optional columns are then
/// present too, empty where unset.
void write_trace(std::ostream& out, std::span<const TraceJob> jobs);

/// File variant; throws std::runtime_error when the file cannot be opened.
void write_trace_file(const std::string& path,
                      std::span<const TraceJob> jobs);

/// Streaming reader over an open trace stream: a StreamingWorkloadSource
/// that parses rows on demand, holding at most `reorder_window` rows in
/// memory. Real logs interleave slightly out of arrival order, so rows
/// are buffered in a bounded sorted window before release; a row whose
/// arrival precedes an already-released job by more than the window can
/// absorb throws std::runtime_error naming its line. With the default
/// window this matches read_trace's stable sort on every trace whose
/// disorder is local (true of real cluster logs and of write_trace
/// output, which is sorted). QoS flags are derived from the column
/// count: >= 4 columns declares deadlines, >= 5 declares budgets.
class StreamingTraceReader final : public StreamingWorkloadSource {
 public:
  /// The stream must outlive the reader. Reads up to the first data row
  /// eagerly (so header/column errors surface at construction).
  explicit StreamingTraceReader(std::istream& in,
                                std::size_t reorder_window = 1024,
                                std::string name = "trace_stream");
  ~StreamingTraceReader() override;

  StreamingTraceReader(const StreamingTraceReader&) = delete;
  StreamingTraceReader& operator=(const StreamingTraceReader&) = delete;

  [[nodiscard]] std::string_view name() const noexcept override;
  bool next_chunk(double until, std::vector<TraceJob>& out) override;
  [[nodiscard]] StreamQos qos() const noexcept override;

  /// Largest number of rows ever buffered at once — the memory bound.
  [[nodiscard]] std::size_t peak_buffered() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Parses a churn sidecar trace (`machine,fail_at,repair_at` rows).
/// Event ORDER IS PRESERVED — no sorting — because the simulator applies
/// recorded events in order within an activation. Throws
/// std::runtime_error naming the line on malformed input (wrong column
/// count, unparsable or non-finite numbers, machine < 0, fail_at < 0,
/// repair_at < fail_at).
[[nodiscard]] std::vector<ChurnEvent> read_churn_trace(std::istream& in);

/// File variant; also throws when the file cannot be opened.
[[nodiscard]] std::vector<ChurnEvent> read_churn_trace_file(
    const std::string& path);

/// Writes churn events in recorded order with round-trip precision.
void write_churn_trace(std::ostream& out, std::span<const ChurnEvent> events);

/// File variant; throws std::runtime_error when the file cannot be opened.
void write_churn_trace_file(const std::string& path,
                            std::span<const ChurnEvent> events);

}  // namespace gridsched
