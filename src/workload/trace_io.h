// Trace serialization: the on-disk workload format.
//
// A gridsched trace is a CSV file with one row per job (see
// docs/workloads.md for the full spec):
//
//     # comment lines start with '#' or ';'
//     arrival,workload_mi,class,deadline,budget,user
//     0.42,22026.465794806718,1,180.5,1000,3
//     1.07,18033.744927828524,,,,
//
// The header row is optional (a row whose first field parses as a double
// is data). Columns beyond the first two are optional as a prefix chain:
// a trace has 2 to 6 columns, and a trailing column is emitted only when
// at least one job carries the field. `class`: empty or -1 means
// "unclassed" (the simulator hashes a class when classes are enabled).
// `deadline`/`budget` (QoS, src/qos/qos.h): empty means none/unlimited;
// `user`: empty means anonymous. Rows are stably sorted by arrival on
// read — real cluster logs interleave slightly — so job ids always follow
// arrival order. Doubles are written with round-trip precision: a
// recorded run replayed through TraceWorkloadSource reproduces the
// original per-job records bit for bit (enforced by
// tests/test_workload.cpp and the churn round-trip in tests/test_qos.cpp).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "workload/workload_source.h"

namespace gridsched {

/// Parses a trace. Throws std::runtime_error naming the offending line on
/// malformed input (wrong column count, unparsable numbers, negative
/// arrivals, non-positive sizes). An input with no data rows is a valid
/// empty trace.
[[nodiscard]] std::vector<TraceJob> read_trace(std::istream& in);

/// File variant; also throws when the file cannot be opened.
[[nodiscard]] std::vector<TraceJob> read_trace_file(const std::string& path);

/// Writes jobs in the format above, with round-trip double precision.
/// Optional columns (class, deadline, budget, user) are emitted up to the
/// last one some job actually carries; earlier optional columns are then
/// present too, empty where unset.
void write_trace(std::ostream& out, std::span<const TraceJob> jobs);

/// File variant; throws std::runtime_error when the file cannot be opened.
void write_trace_file(const std::string& path,
                      std::span<const TraceJob> jobs);

}  // namespace gridsched
