#include "workload/swf_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "common/csv.h"
#include "workload/trace_parse.h"

namespace gridsched {
namespace {

using trace_detail::fail;
using trace_detail::parse_double;
using trace_detail::read_bounded_line;
using trace_detail::split_ws_fields;
using trace_detail::strip_bom;
using trace_detail::trimmed;

/// SWF integer column (user/queue/partition): any integer parses; every
/// negative value is the SWF "unset" sentinel and maps to -1.
int parse_swf_int(std::string_view field, std::size_t line,
                  const char* column) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    fail(line, std::string(column) + " is not an integer: '" +
                   std::string(field) + "'");
  }
  return value < 0 ? -1 : value;
}

/// Shared SWF row state machine (materialized + streaming paths): one
/// TraceJob per usable row, skip-rule drops counted, structural errors
/// thrown with the physical line number. Carries the rebase base across
/// rows, so both paths subtract the SAME first-job submit time.
class SwfRowMapper {
 public:
  explicit SwfRowMapper(const SwfMapping& mapping) : mapping_(mapping) {
    if (!(mapping_.reference_mips > 0) ||
        !std::isfinite(mapping_.reference_mips)) {
      throw std::invalid_argument(
          "SwfMapping::reference_mips must be finite and > 0");
    }
  }

  enum class Row { kNotData, kJob, kSkipped };

  Row map(std::string_view raw, std::size_t line_no, TraceJob& job) {
    const std::string_view content = trimmed(raw);
    if (content.empty() || content.front() == ';' || content.front() == '#') {
      return Row::kNotData;
    }
    const std::vector<std::string_view> fields = split_ws_fields(content);
    if (fields.size() != 18) {
      fail(line_no,
           "expected 18 SWF columns, got " + std::to_string(fields.size()));
    }
    const double submit = parse_double(fields[1], line_no, "submit time");
    const double run = parse_double(fields[3], line_no, "run time");
    const double requested =
        parse_double(fields[8], line_no, "requested time");
    if (!std::isfinite(submit)) fail(line_no, "submit time must be finite");
    if (!std::isfinite(run)) fail(line_no, "run time must be finite");
    if (!std::isfinite(requested)) {
      fail(line_no, "requested time must be finite");
    }
    const int user = parse_swf_int(fields[11], line_no, "user id");
    const int queue = parse_swf_int(fields[14], line_no, "queue");
    const int partition = parse_swf_int(fields[15], line_no, "partition");
    // Skip rules: a job with no submit time has no arrival; run <= 0 is
    // a cancelled/failed job with unknown runtime (also catches run's
    // -1 sentinel). Published logs always contain some of each.
    if (submit < 0 || !(run > 0)) {
      ++skipped_;
      return Row::kSkipped;
    }
    double arrival = submit;
    if (mapping_.rebase_arrivals) {
      if (!have_base_) {
        base_ = submit;
        have_base_ = true;
      }
      arrival = std::max(0.0, submit - base_);
    }
    job = TraceJob{};
    job.arrival = arrival;
    job.workload_mi = run * mapping_.reference_mips;
    if (!std::isfinite(job.workload_mi)) {
      fail(line_no, "run time * reference_mips overflows");
    }
    switch (mapping_.class_from) {
      case SwfMapping::ClassFrom::kNone:
        break;
      case SwfMapping::ClassFrom::kQueue:
        job.job_class = queue;
        break;
      case SwfMapping::ClassFrom::kPartition:
        job.job_class = partition;
        break;
    }
    if (mapping_.map_deadline && requested > 0) {
      job.deadline = arrival + requested;
    }
    if (mapping_.map_user && user >= 0) job.user = user;
    return Row::kJob;
  }

  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }

 private:
  SwfMapping mapping_;
  bool have_base_ = false;
  double base_ = 0.0;
  std::size_t skipped_ = 0;
};

}  // namespace

std::vector<TraceJob> read_swf(std::istream& in, const SwfMapping& mapping,
                               std::size_t* skipped_rows) {
  std::vector<TraceJob> jobs;
  std::string line;
  std::size_t line_no = 0;
  SwfRowMapper mapper(mapping);
  while (read_bounded_line(in, line, line_no + 1)) {
    ++line_no;
    const std::string_view raw =
        line_no == 1 ? strip_bom(line) : std::string_view(line);
    TraceJob job;
    if (mapper.map(raw, line_no, job) == SwfRowMapper::Row::kJob) {
      jobs.push_back(job);
    }
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.arrival < b.arrival;
                   });
  if (skipped_rows) *skipped_rows = mapper.skipped();
  return jobs;
}

std::vector<TraceJob> read_swf_file(const std::string& path,
                                    const SwfMapping& mapping,
                                    std::size_t* skipped_rows) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_swf_file: cannot open " + path);
  return read_swf(in, mapping, skipped_rows);
}

struct SwfStreamReader::Impl {
  std::istream& in;
  std::string name;
  SwfMapping mapping;
  SwfRowMapper mapper;
  trace_detail::ReorderBuffer buffer;
  std::string line;
  std::size_t line_no = 0;
  bool exhausted = false;

  Impl(std::istream& stream, SwfMapping map, std::size_t reorder_window,
       std::string label)
      : in(stream), name(std::move(label)), mapping(map), mapper(map),
        buffer(reorder_window) {}

  bool read_row() {
    if (exhausted) return false;
    if (!read_bounded_line(in, line, line_no + 1)) {
      exhausted = true;
      return false;
    }
    ++line_no;
    const std::string_view raw =
        line_no == 1 ? strip_bom(line) : std::string_view(line);
    TraceJob job;
    if (mapper.map(raw, line_no, job) == SwfRowMapper::Row::kJob) {
      buffer.insert(job, line_no);
    }
    return true;
  }

  void fill() {
    while (!exhausted && buffer.size() <= buffer.window()) read_row();
  }
};

SwfStreamReader::SwfStreamReader(std::istream& in, SwfMapping mapping,
                                 std::size_t reorder_window, std::string name)
    : impl_(std::make_unique<Impl>(in, mapping, reorder_window,
                                   std::move(name))) {
  // Prime to the first usable row so structural errors surface here.
  while (!impl_->exhausted && impl_->buffer.empty()) impl_->read_row();
}

SwfStreamReader::~SwfStreamReader() = default;

std::string_view SwfStreamReader::name() const noexcept {
  return impl_->name;
}

bool SwfStreamReader::next_chunk(double until, std::vector<TraceJob>& out) {
  for (;;) {
    impl_->fill();
    if (impl_->buffer.empty()) return false;
    if (impl_->buffer.front().arrival > until) return true;
    out.push_back(impl_->buffer.pop());
  }
}

StreamQos SwfStreamReader::qos() const noexcept {
  StreamQos qos;
  qos.deadlines = impl_->mapping.map_deadline;
  // SWF has no budget column, but mapped user ids feed the same budget
  // context (BatchContext::job_users) the materialized scan turns on —
  // declaring them keeps streaming and materialized runs bit-identical.
  qos.budgets = impl_->mapping.map_user;
  return qos;
}

std::size_t SwfStreamReader::skipped_rows() const noexcept {
  return impl_->mapper.skipped();
}

std::size_t SwfStreamReader::peak_buffered() const noexcept {
  return impl_->buffer.peak();
}

void write_swf_row(std::ostream& out, long job_id, double submit_seconds,
                   double run_seconds, int procs, int user, int queue,
                   double requested_seconds) {
  // Columns gridsched does not map are the -1 sentinel, per the SWF
  // convention for unknown fields.
  out << job_id << ' ' << CsvWriter::field(submit_seconds) << " -1 "
      << CsvWriter::field(run_seconds) << ' ' << procs << " -1 -1 " << procs
      << ' ' << CsvWriter::field(requested_seconds) << " -1 1 " << user
      << " -1 -1 " << queue << " -1 -1 -1\n";
}

}  // namespace gridsched
