#include "workload/workload_source.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gridsched {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

TraceJob lognormal_job(double arrival, const LogNormalSize& size,
                       Rng& workload_rng) {
  TraceJob job;
  job.arrival = arrival;
  job.workload_mi =
      std::exp(workload_rng.normal(size.log_mean, size.log_sigma));
  return job;
}

/// Non-homogeneous Poisson process by thinning: candidates at `rate_max`,
/// kept with probability rate(t) / rate_max. Exact for any rate function
/// bounded by rate_max; sizes are drawn only for accepted arrivals so the
/// workload stream does not depend on the rejected candidates.
template <typename RateFn>
std::vector<TraceJob> thinned_stream(double horizon, double rate_max,
                                     RateFn rate_at, const LogNormalSize& size,
                                     Rng& arrival_rng, Rng& workload_rng) {
  std::vector<TraceJob> jobs;
  double t = arrival_rng.exponential(rate_max);
  while (t < horizon) {
    if (arrival_rng.uniform() * rate_max < rate_at(t)) {
      jobs.push_back(lognormal_job(t, size, workload_rng));
    }
    t += arrival_rng.exponential(rate_max);
  }
  return jobs;
}

}  // namespace

std::vector<TraceJob> PoissonWorkload::generate(double horizon,
                                                Rng& arrival_rng,
                                                Rng& workload_rng) {
  // Draw-for-draw the loop GridSimulator ran before workload sources
  // existed: one exponential gap, then one size, per job — a SimConfig
  // without a source replays its historical stream bit for bit.
  std::vector<TraceJob> jobs;
  double t = arrival_rng.exponential(rate_);
  while (t < horizon) {
    jobs.push_back(lognormal_job(t, size_, workload_rng));
    t += arrival_rng.exponential(rate_);
  }
  return jobs;
}

BurstyWorkload::BurstyWorkload(BurstyConfig config) : config_(config) {
  require(config_.on_rate > 0 && config_.off_rate >= 0,
          "BurstyWorkload: rates must be positive (off may be 0)");
  require(config_.mean_on > 0 && config_.mean_off > 0,
          "BurstyWorkload: phase lengths must be positive");
}

std::vector<TraceJob> BurstyWorkload::generate(double horizon,
                                               Rng& arrival_rng,
                                               Rng& workload_rng) {
  std::vector<TraceJob> jobs;
  // Start from the chain's stationary distribution: always starting "on"
  // would add ~one relaxation time of extra burst, biasing the offered
  // load above the duty-cycle calibration at every horizon.
  const double duty =
      config_.mean_on / (config_.mean_on + config_.mean_off);
  bool on = arrival_rng.chance(duty);
  double t = 0.0;
  double phase_end = arrival_rng.exponential(
      1.0 / (on ? config_.mean_on : config_.mean_off));
  while (t < horizon) {
    const double rate = on ? config_.on_rate : config_.off_rate;
    // A zero off-rate means silent gaps: skip straight to the next phase.
    const double gap = rate > 0 ? arrival_rng.exponential(rate)
                                : std::numeric_limits<double>::infinity();
    if (t + gap < std::min(phase_end, horizon)) {
      t += gap;
      jobs.push_back(lognormal_job(t, config_.size, workload_rng));
    } else {
      // Memorylessness lets us discard the partial gap at a phase switch.
      t = phase_end;
      on = !on;
      phase_end = t + arrival_rng.exponential(
                          1.0 / (on ? config_.mean_on : config_.mean_off));
    }
  }
  return jobs;
}

DiurnalWorkload::DiurnalWorkload(DiurnalConfig config) : config_(config) {
  require(config_.base_rate > 0, "DiurnalWorkload: base_rate must be > 0");
  require(config_.amplitude >= 0 && config_.amplitude < 1.0,
          "DiurnalWorkload: amplitude must be in [0, 1)");
  require(config_.period > 0, "DiurnalWorkload: period must be > 0");
}

std::vector<TraceJob> DiurnalWorkload::generate(double horizon,
                                                Rng& arrival_rng,
                                                Rng& workload_rng) {
  const double rate_max = config_.base_rate * (1.0 + config_.amplitude);
  const auto rate_at = [this](double t) {
    return config_.base_rate *
           (1.0 + config_.amplitude *
                      std::sin(kTwoPi * t / config_.period + config_.phase));
  };
  return thinned_stream(horizon, rate_max, rate_at, config_.size, arrival_rng,
                        workload_rng);
}

HeavyTailWorkload::HeavyTailWorkload(HeavyTailConfig config)
    : config_(config) {
  require(config_.rate > 0, "HeavyTailWorkload: rate must be > 0");
  require(config_.alpha > 0, "HeavyTailWorkload: alpha must be > 0");
  require(config_.min_mi > 0 && config_.max_mi > config_.min_mi,
          "HeavyTailWorkload: need 0 < min_mi < max_mi");
}

std::vector<TraceJob> HeavyTailWorkload::generate(double horizon,
                                                  Rng& arrival_rng,
                                                  Rng& workload_rng) {
  // Bounded Pareto by inverse CDF: u uniform in [0, 1),
  // x = L / (1 - u (1 - (L/H)^alpha))^(1/alpha).
  const double ratio_a = std::pow(config_.min_mi / config_.max_mi,
                                  config_.alpha);
  std::vector<TraceJob> jobs;
  double t = arrival_rng.exponential(config_.rate);
  while (t < horizon) {
    const double u = workload_rng.uniform();
    TraceJob job;
    job.arrival = t;
    job.workload_mi =
        config_.min_mi /
        std::pow(1.0 - u * (1.0 - ratio_a), 1.0 / config_.alpha);
    jobs.push_back(job);
    t += arrival_rng.exponential(config_.rate);
  }
  return jobs;
}

FlashCrowdWorkload::FlashCrowdWorkload(FlashCrowdConfig config)
    : config_(config) {
  require(config_.base_rate > 0, "FlashCrowdWorkload: base_rate must be > 0");
  require(config_.spike_multiplier >= 1.0,
          "FlashCrowdWorkload: spike_multiplier must be >= 1");
  require(config_.begin_frac >= 0 && config_.duration_frac >= 0 &&
              config_.begin_frac + config_.duration_frac <= 1.0,
          "FlashCrowdWorkload: spike window must fit inside the horizon");
}

std::vector<TraceJob> FlashCrowdWorkload::generate(double horizon,
                                                   Rng& arrival_rng,
                                                   Rng& workload_rng) {
  const double begin = config_.begin_frac * horizon;
  const double end = begin + config_.duration_frac * horizon;
  const double rate_max = config_.base_rate * config_.spike_multiplier;
  const auto rate_at = [&](double t) {
    return (t >= begin && t < end) ? rate_max : config_.base_rate;
  };
  return thinned_stream(horizon, rate_max, rate_at, config_.size, arrival_rng,
                        workload_rng);
}

ClassMixWorkload::ClassMixWorkload(std::shared_ptr<WorkloadSource> base,
                                   std::vector<double> weights)
    : ClassMixWorkload(std::move(base), std::move(weights), {}) {}

ClassMixWorkload::ClassMixWorkload(std::shared_ptr<WorkloadSource> base,
                                   std::vector<double> weights,
                                   std::vector<double> size_scales)
    : base_(std::move(base)), size_scales_(std::move(size_scales)) {
  require(base_ != nullptr, "ClassMixWorkload: base source must not be null");
  require(!weights.empty(), "ClassMixWorkload: need at least one class");
  double total = 0.0;
  for (const double weight : weights) {
    require(weight >= 0.0, "ClassMixWorkload: weights must be >= 0");
    total += weight;
  }
  require(total > 0.0, "ClassMixWorkload: weights must sum to > 0");
  require(size_scales_.empty() || size_scales_.size() == weights.size(),
          "ClassMixWorkload: need one size scale per class (or none)");
  for (const double scale : size_scales_) {
    require(scale > 0.0 && std::isfinite(scale),
            "ClassMixWorkload: size scales must be finite and > 0");
  }
  double cumulative = 0.0;
  for (const double weight : weights) {
    cumulative += weight / total;
    cumulative_.push_back(cumulative);
  }
  cumulative_.back() = 1.0;  // guard against rounding at the top bin
  name_ = "class-mix(" + std::string(base_->name()) + ")";
}

std::vector<TraceJob> ClassMixWorkload::generate(double horizon,
                                                 Rng& arrival_rng,
                                                 Rng& workload_rng) {
  std::vector<TraceJob> jobs = base_->generate(horizon, arrival_rng,
                                               workload_rng);
  // One class draw per job, AFTER the base stream is fully materialized:
  // the wrapped source sees exactly the generator states it would see
  // unwrapped, so wrapping never perturbs arrivals or sizes.
  for (TraceJob& job : jobs) {
    const double u = workload_rng.uniform();
    // upper_bound, so zero-weight classes are unreachable even at u == 0
    // (u < 1 and the top bin is exactly 1, so a bin always exists).
    const auto bin = std::upper_bound(cumulative_.begin(), cumulative_.end(),
                                      u);
    job.job_class = static_cast<int>(bin - cumulative_.begin());
    if (!size_scales_.empty()) {
      job.workload_mi *= size_scales_[static_cast<std::size_t>(job.job_class)];
    }
  }
  return jobs;
}

MaterializedStream::MaterializedStream(std::vector<TraceJob> jobs,
                                       std::string name)
    : jobs_(std::move(jobs)), name_(std::move(name)) {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.arrival < b.arrival;
                   });
  for (const TraceJob& job : jobs_) {
    if (job.deadline >= 0) qos_.deadlines = true;
    if (job.user >= 0 || job.budget >= 0) qos_.budgets = true;
  }
}

MaterializedStream::MaterializedStream(WorkloadSource& source, double horizon,
                                       Rng& arrival_rng, Rng& workload_rng)
    : MaterializedStream(source.generate(horizon, arrival_rng, workload_rng),
                         "stream(" + std::string(source.name()) + ")") {}

bool MaterializedStream::next_chunk(double until, std::vector<TraceJob>& out) {
  while (cursor_ < jobs_.size() && jobs_[cursor_].arrival <= until) {
    out.push_back(jobs_[cursor_]);
    ++cursor_;
  }
  return cursor_ < jobs_.size();
}

TraceWorkloadSource::TraceWorkloadSource(std::vector<TraceJob> jobs)
    : jobs_(std::move(jobs)) {
  // Real logs interleave slightly; a stable sort restores arrival order
  // while keeping equal-time jobs in file order (job ids stay meaningful).
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.arrival < b.arrival;
                   });
}

std::vector<TraceJob> TraceWorkloadSource::generate(double horizon,
                                                    Rng& arrival_rng,
                                                    Rng& workload_rng) {
  (void)arrival_rng;
  (void)workload_rng;
  const auto cut = std::lower_bound(
      jobs_.begin(), jobs_.end(), horizon,
      [](const TraceJob& job, double h) { return job.arrival < h; });
  return std::vector<TraceJob>(jobs_.begin(), cut);
}

std::string_view workload_name(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kPoisson: return "poisson";
    case WorkloadKind::kBursty: return "bursty";
    case WorkloadKind::kDiurnal: return "diurnal";
    case WorkloadKind::kHeavyTail: return "heavy-tail";
    case WorkloadKind::kFlashCrowd: return "flash-crowd";
  }
  return "?";
}

std::span<const WorkloadKind> all_workload_kinds() noexcept {
  static constexpr std::array<WorkloadKind, 5> kAll = {
      WorkloadKind::kPoisson,   WorkloadKind::kBursty,
      WorkloadKind::kDiurnal,   WorkloadKind::kHeavyTail,
      WorkloadKind::kFlashCrowd,
  };
  return kAll;
}

std::unique_ptr<WorkloadSource> make_workload(WorkloadKind kind, double rate,
                                              double horizon,
                                              LogNormalSize size) {
  require(rate > 0 && horizon > 0,
          "make_workload: rate and horizon must be > 0");
  switch (kind) {
    case WorkloadKind::kPoisson:
      return std::make_unique<PoissonWorkload>(rate, size);
    case WorkloadKind::kBursty: {
      // 25% duty cycle with a quiet background: duty * on + (1 - duty) *
      // off = rate keeps the offered volume equal to plain Poisson.
      BurstyConfig config;
      config.off_rate = 0.2 * rate;
      config.on_rate = (rate - 0.75 * config.off_rate) / 0.25;
      config.mean_on = horizon / 12.0;
      config.mean_off = 3.0 * config.mean_on;
      config.size = size;
      return std::make_unique<BurstyWorkload>(config);
    }
    case WorkloadKind::kDiurnal: {
      // Two whole cycles over the horizon: the sine integrates to zero,
      // so the expected volume is exactly rate * horizon.
      DiurnalConfig config;
      config.base_rate = rate;
      config.amplitude = 0.8;
      config.period = horizon / 2.0;
      config.size = size;
      return std::make_unique<DiurnalWorkload>(config);
    }
    case WorkloadKind::kHeavyTail: {
      // Match the LogNormal's mean: a bounded Pareto with alpha = 1.5 and
      // H >> L has mean ~ alpha / (alpha - 1) * L = 3 L.
      HeavyTailConfig config;
      config.rate = rate;
      config.alpha = 1.5;
      config.min_mi =
          std::exp(size.log_mean + 0.5 * size.log_sigma * size.log_sigma) /
          3.0;
      config.max_mi = 1000.0 * config.min_mi;
      return std::make_unique<HeavyTailWorkload>(config);
    }
    case WorkloadKind::kFlashCrowd: {
      // base * (1 - d) + spike * d = rate with a 10% window at 5x base.
      FlashCrowdConfig config;
      config.spike_multiplier = 5.0;
      config.duration_frac = 0.1;
      config.begin_frac = 0.4;
      config.base_rate =
          rate / (1.0 - config.duration_frac +
                  config.duration_frac * config.spike_multiplier);
      config.size = size;
      return std::make_unique<FlashCrowdWorkload>(config);
    }
  }
  throw std::invalid_argument("make_workload: unknown kind");
}

}  // namespace gridsched
