// Internal parsing toolkit shared by the trace readers (trace_io.cpp,
// swf_io.cpp). Everything here enforces the robustness contract stated
// in trace_io.h: bounded line reads, CRLF/BOM tolerance, physical line
// numbers in every error, NaN/inf rejection on validated columns.
//
// Not part of the public API — include only from src/workload/*.cpp.
#pragma once

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstddef>
#include <istream>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "workload/trace_io.h"
#include "workload/workload_source.h"

namespace gridsched::trace_detail {

[[noreturn]] inline void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace line " + std::to_string(line) + ": " + what);
}

inline std::string_view trimmed(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Comma splitter for gridsched CSV traces; fields come back trimmed.
inline std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    fields.push_back(trimmed(line.substr(start, comma - start)));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return fields;
}

/// Whitespace splitter for SWF rows (runs of blanks/tabs separate the 18
/// columns; no empty fields possible).
inline std::vector<std::string_view> split_ws_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    std::size_t begin = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    fields.push_back(line.substr(begin, i - begin));
  }
  return fields;
}

inline double parse_double(std::string_view field, std::size_t line,
                           const char* column) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    fail(line, std::string(column) + " is not a number: '" +
                   std::string(field) + "'");
  }
  return value;
}

inline int parse_optional_int(std::string_view field, std::size_t line,
                              const char* column) {
  if (field.empty()) return -1;  // unset
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    fail(line, std::string(column) + " is not an integer: '" +
                   std::string(field) + "'");
  }
  if (value < -1) fail(line, std::string(column) + " must be >= -1");
  return value;
}

/// QoS doubles (deadline, budget): an empty field is the "none" sentinel
/// -1; a present field must be finite and >= 0, NaN rejected like the
/// mandatory columns.
inline double parse_optional_double(std::string_view field, std::size_t line,
                                    const char* column) {
  if (field.empty()) return -1.0;  // unset
  const double value = parse_double(field, line, column);
  if (!(value >= 0) || !std::isfinite(value)) {
    fail(line, std::string(column) + " must be finite and >= 0 (or empty)");
  }
  return value;
}

/// A header row is any row whose first field is not parseable as a
/// double. Parsing (rather than sniffing the first character) keeps
/// "nan"/"inf" and empty fields on the data path, where the validator
/// rejects them with a line number instead of silently eating the row.
inline bool looks_like_header(std::string_view first_field) {
  if (first_field.empty()) return false;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(
      first_field.data(), first_field.data() + first_field.size(), value);
  return ec != std::errc{} || ptr != first_field.data() + first_field.size();
}

/// Bounded std::getline replacement shared by every trace reader: reads
/// one physical line through the streambuf, throws (naming the line)
/// past kMaxTraceLineBytes instead of buffering a corrupt gigabyte
/// "line", strips a trailing '\r' (CRLF logs), and accepts a final row
/// with no newline. Returns false only at clean EOF.
inline bool read_bounded_line(std::istream& in, std::string& line,
                              std::size_t line_no) {
  using Traits = std::istream::traits_type;
  line.clear();
  if (!in.good()) return false;
  std::streambuf* buf = in.rdbuf();
  int ch = buf->sbumpc();
  if (Traits::eq_int_type(ch, Traits::eof())) {
    in.setstate(std::ios::eofbit);
    return false;
  }
  while (!Traits::eq_int_type(ch, Traits::eof()) && ch != '\n') {
    line.push_back(Traits::to_char_type(ch));
    if (line.size() > kMaxTraceLineBytes) {
      fail(line_no,
           "line exceeds " + std::to_string(kMaxTraceLineBytes) + " bytes");
    }
    ch = buf->sbumpc();
  }
  if (Traits::eq_int_type(ch, Traits::eof())) in.setstate(std::ios::eofbit);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

/// Drops a UTF-8 byte-order mark. Only called on line 1.
inline std::string_view strip_bom(std::string_view line) {
  if (line.starts_with("\xEF\xBB\xBF")) line.remove_prefix(3);
  return line;
}

/// Bounded reorder window shared by the streaming readers. Jobs are kept
/// sorted by arrival; equal arrivals keep insertion (file) order, so a
/// fully drained buffer releases the same sequence as read_trace's
/// stable sort whenever the input's disorder is local. A row landing
/// before an already-released job throws, naming its line. `head` marks
/// released rows not yet compacted, so pops are O(1) and inserts shift
/// at most ~window elements.
class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::size_t window)
      : window_(std::max<std::size_t>(window, 1)) {}

  void insert(const TraceJob& job, std::size_t line_no) {
    if (job.arrival < last_released_) {
      fail(line_no,
           "row out of order beyond the reorder window (arrival " +
               std::to_string(job.arrival) + " after a released job at " +
               std::to_string(last_released_) +
               "); re-sort the trace or widen the window");
    }
    const auto pos = std::upper_bound(
        buffer_.begin() + static_cast<std::ptrdiff_t>(head_), buffer_.end(),
        job, [](const TraceJob& a, const TraceJob& b) {
          return a.arrival < b.arrival;
        });
    buffer_.insert(pos, job);
    peak_ = std::max(peak_, size());
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return buffer_.size() - head_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] const TraceJob& front() const { return buffer_[head_]; }
  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  [[nodiscard]] std::size_t peak() const noexcept { return peak_; }

  TraceJob pop() {
    const TraceJob job = buffer_[head_];
    ++head_;
    last_released_ = job.arrival;
    if (head_ > window_) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return job;
  }

 private:
  std::size_t window_;
  std::vector<TraceJob> buffer_;
  std::size_t head_ = 0;
  double last_released_ = -std::numeric_limits<double>::infinity();
  std::size_t peak_ = 0;
};

}  // namespace gridsched::trace_detail
