// Workload sources: who arrives when, and how big they are.
//
// The dynamic-grid benches so far exercised one arrival pattern — the
// Poisson process hard-coded into GridSimulator. Real grid traffic is
// bursty, diurnal and heavy-tailed, and scheduler rankings flip under
// those patterns, so the simulator now delegates its arrival stream to a
// pluggable WorkloadSource. A source materializes the full stream over
// the horizon as `TraceJob`s (arrival time, job size in MI, optional job
// class); the simulator validates it, resolves effective job classes, and
// exposes the stream back via `GridSimulator::arrival_trace()` so any run
// can be re-emitted as a trace (workload/trace_io.h) and replayed
// bit-for-bit through TraceWorkloadSource.
//
// Built-in sources:
//
//   PoissonWorkload     exponential inter-arrivals, LogNormal sizes — the
//                       simulator's historical default, reproduced draw
//                       for draw (a SimConfig without a source behaves
//                       exactly as before).
//   BurstyWorkload      on/off Markov-modulated Poisson: exponential
//                       burst/gap phases, high rate inside a burst.
//   DiurnalWorkload     sinusoidally rate-modulated Poisson (thinning),
//                       the day/night cycle of user-facing grids.
//   HeavyTailWorkload   Poisson arrivals with bounded-Pareto sizes — a
//                       few elephants dominate the total work.
//   FlashCrowdWorkload  baseline Poisson plus one spike window at a
//                       multiple of the base rate.
//   TraceWorkloadSource replays a recorded or imported trace verbatim.
//
// `make_workload` builds any synthetic kind calibrated so its expected
// arrival volume over the horizon matches a plain Poisson process at the
// given rate — scenarios compare at equal offered load.
//
// HORIZON CONVENTION (pinned by tests/test_workload.cpp): the arrival
// window is half-open, [0, horizon). Every source — synthetic generators,
// TraceWorkloadSource::generate, and the streaming path in GridSimulator —
// drops a job whose arrival equals the horizon exactly, so replaying a
// recorded run can never drop or duplicate the boundary job.
//
// For traces too large to materialize (a multi-million-job supercomputer
// log), `StreamingWorkloadSource` is the incremental counterpart of
// `WorkloadSource`: the simulator pulls arrivals chunk by chunk
// (`next_chunk(until)`) and retires per-job state as jobs finalize, so
// peak memory is bounded by the in-flight window, not the trace length.
// `MaterializedStream` adapts any in-memory stream (or any existing
// WorkloadSource via its untouched `generate()`) onto the streaming path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace gridsched {

/// One arriving job of a workload trace.
struct TraceJob {
  double arrival = 0.0;      // seconds since simulation start
  double workload_mi = 0.0;  // job size, millions of instructions
  /// Job class for class-structured grids; -1 = unspecified (the
  /// simulator hashes one from the job id, as it always did).
  int job_class = -1;
  /// Absolute completion deadline in simulation seconds; -1 = best
  /// effort (no deadline). See src/qos/qos.h for the QoS semantics.
  double deadline = -1.0;
  /// Cost budget of the submitting user; -1 = unlimited. The budget is
  /// shared across all jobs of the same user, not per job.
  double budget = -1.0;
  /// Submitting user id for budget accounting; -1 = anonymous.
  int user = -1;

  friend bool operator==(const TraceJob&, const TraceJob&) = default;
};

/// One machine-failure episode of a simulated run: the machine dies at
/// `fail_at` and comes back at `repair_at` (jobs unfinished at the
/// failure are re-queued; see sim/grid_simulator.h). Recording them next
/// to the arrival trace closes the record -> replay loop: arrivals alone
/// do not reproduce a churny run under a non-deterministic scheduler,
/// because the drawn failure process depends on how long the run drains.
/// Serialized as a sidecar stream by workload/trace_io.h
/// (read/write_churn_trace); replayed via SimConfig::churn_replay.
struct ChurnEvent {
  int machine = -1;
  double fail_at = 0.0;
  double repair_at = 0.0;

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Materializes every arrival in [0, horizon), sorted by arrival time
  /// with positive sizes (the simulator validates and throws otherwise).
  /// The two streams are the simulator's seed-split generators — using
  /// them keeps a run bitwise reproducible from SimConfig::seed; sources
  /// that replay recorded data ignore them.
  [[nodiscard]] virtual std::vector<TraceJob> generate(
      double horizon, Rng& arrival_rng, Rng& workload_rng) = 0;
};

/// Which QoS columns a stream can carry. The simulator decides ONCE, at
/// run start, whether batches get deadline/budget context (it cannot scan
/// an unmaterialized stream the way the materialized path scans its
/// vector), so streaming sources declare it up front. Declaring a column
/// that turns out to hold only sentinels is harmless: an all-infinite
/// deadline column is behaviorally identical to an absent one
/// (test-pinned in the portfolio), it just rides along in BatchContext.
struct StreamQos {
  bool deadlines = false;  ///< some job may carry a finite deadline
  bool budgets = false;    ///< some job may carry a user or cost budget
};

/// Incremental counterpart of WorkloadSource for traces too large to
/// materialize. A streaming source is single-shot: it consumes its
/// underlying input (an open istream, a generator) as chunks are pulled,
/// so construct a fresh one per simulation run.
class StreamingWorkloadSource {
 public:
  virtual ~StreamingWorkloadSource() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Appends every remaining job with arrival <= until to `out`, in
  /// arrival order (ties in input order). Returns true while the stream
  /// may still hold jobs with arrival > until; false once it is
  /// exhausted. Callers bound their pull window (the simulator passes its
  /// activation time), which bounds the chunk size by the offered load —
  /// the O(1)-in-trace-length memory contract.
  virtual bool next_chunk(double until, std::vector<TraceJob>& out) = 0;

  /// QoS column presence (see StreamQos). Default: none.
  [[nodiscard]] virtual StreamQos qos() const noexcept { return {}; }
};

/// Streams an in-memory job vector — the materializing adapter that lets
/// every existing WorkloadSource (whose `generate()` is untouched) and
/// every recorded trace feed the streaming path. QoS presence is computed
/// exactly from the jobs, so a simulation consuming the adapter is
/// bit-identical to one consuming the materialized vector directly.
class MaterializedStream final : public StreamingWorkloadSource {
 public:
  /// Jobs are stably sorted by arrival here (file/recorded order kept for
  /// ties), exactly like TraceWorkloadSource.
  explicit MaterializedStream(std::vector<TraceJob> jobs,
                              std::string name = "materialized");

  /// Materializes `source` over [0, horizon) with the given generators
  /// and streams the result.
  MaterializedStream(WorkloadSource& source, double horizon,
                     Rng& arrival_rng, Rng& workload_rng);

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  bool next_chunk(double until, std::vector<TraceJob>& out) override;
  [[nodiscard]] StreamQos qos() const noexcept override { return qos_; }

 private:
  std::vector<TraceJob> jobs_;
  std::size_t cursor_ = 0;
  StreamQos qos_;
  std::string name_;
};

/// LogNormal(log_mean, log_sigma) job sizes, shared by every synthetic
/// source except the heavy-tailed one.
struct LogNormalSize {
  double log_mean = 10.0;  // exp(10) ~ 22k MI
  double log_sigma = 0.8;
};

class PoissonWorkload final : public WorkloadSource {
 public:
  PoissonWorkload(double rate, LogNormalSize size) noexcept
      : rate_(rate), size_(size) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "poisson";
  }
  [[nodiscard]] std::vector<TraceJob> generate(double horizon,
                                               Rng& arrival_rng,
                                               Rng& workload_rng) override;

 private:
  double rate_;
  LogNormalSize size_;
};

/// On/off Markov-modulated Poisson process: phases alternate between a
/// burst (rate `on_rate`, mean length `mean_on`) and a gap (`off_rate`,
/// `mean_off`), with exponentially distributed phase lengths.
struct BurstyConfig {
  double on_rate = 1.7;
  double off_rate = 0.1;
  double mean_on = 30.0;   // seconds
  double mean_off = 90.0;  // seconds
  LogNormalSize size{};
};

class BurstyWorkload final : public WorkloadSource {
 public:
  explicit BurstyWorkload(BurstyConfig config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "bursty";
  }
  [[nodiscard]] std::vector<TraceJob> generate(double horizon,
                                               Rng& arrival_rng,
                                               Rng& workload_rng) override;

 private:
  BurstyConfig config_;
};

/// Sinusoidal rate modulation: rate(t) = base * (1 + amplitude *
/// sin(2 pi t / period + phase)). Sampled by thinning (Lewis-Shedler), so
/// the stream stays exact for any modulation depth.
struct DiurnalConfig {
  double base_rate = 0.5;  // long-run mean jobs/s
  double amplitude = 0.8;  // in [0, 1): peak rate = base * (1 + amplitude)
  double period = 600.0;   // seconds per day/night cycle
  double phase = 0.0;      // radians
  LogNormalSize size{};
};

class DiurnalWorkload final : public WorkloadSource {
 public:
  explicit DiurnalWorkload(DiurnalConfig config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "diurnal";
  }
  [[nodiscard]] std::vector<TraceJob> generate(double horizon,
                                               Rng& arrival_rng,
                                               Rng& workload_rng) override;

 private:
  DiurnalConfig config_;
};

/// Poisson arrivals with bounded-Pareto sizes: P(X > x) ~ x^-alpha on
/// [min_mi, max_mi]. The truncation keeps a sampled elephant from turning
/// a finite-horizon simulation into one endless job.
struct HeavyTailConfig {
  double rate = 0.5;
  double alpha = 1.5;      // tail index; heavier as it approaches 1
  double min_mi = 1e4;     // smallest job size
  double max_mi = 1e7;     // truncation point
};

class HeavyTailWorkload final : public WorkloadSource {
 public:
  explicit HeavyTailWorkload(HeavyTailConfig config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "heavy-tail";
  }
  [[nodiscard]] std::vector<TraceJob> generate(double horizon,
                                               Rng& arrival_rng,
                                               Rng& workload_rng) override;

 private:
  HeavyTailConfig config_;
};

/// Baseline Poisson with one flash-crowd window: inside
/// [begin_frac, begin_frac + duration_frac) * horizon the rate jumps to
/// `spike_multiplier` times the base rate.
struct FlashCrowdConfig {
  double base_rate = 0.5;
  double spike_multiplier = 5.0;
  double begin_frac = 0.4;     // window start, fraction of the horizon
  double duration_frac = 0.1;  // window length, fraction of the horizon
  LogNormalSize size{};
};

class FlashCrowdWorkload final : public WorkloadSource {
 public:
  explicit FlashCrowdWorkload(FlashCrowdConfig config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "flash-crowd";
  }
  [[nodiscard]] std::vector<TraceJob> generate(double horizon,
                                               Rng& arrival_rng,
                                               Rng& workload_rng) override;

 private:
  FlashCrowdConfig config_;
};

/// Wraps any source and assigns every job's class by per-class arrival
/// rate weights — class i with probability weights[i] / sum(weights) —
/// instead of the simulator's per-id hash (which yields a uniform mix).
/// This is the workload that makes class-aware routing measurable: a
/// skewed mix (say 70% class 0 on a grid where only half the machines
/// match class 0) is exactly the regime where per-class backlog routing
/// beats total-backlog routing. Class draws come from the workload
/// stream, one per job, after the base source generated its jobs, so a
/// class-mix run stays bitwise reproducible from SimConfig::seed; classes
/// round-trip through the CSV trace class column (record -> replay keeps
/// them verbatim, and trace classes win over the id hash).
class ClassMixWorkload final : public WorkloadSource {
 public:
  /// `weights[c]` is class c's relative arrival rate; must be non-empty,
  /// non-negative, with a positive sum.
  ClassMixWorkload(std::shared_ptr<WorkloadSource> base,
                   std::vector<double> weights);

  /// As above, but each class also scales its job sizes: class c's
  /// workload_mi is multiplied by `size_scales[c]` (finite, > 0; one per
  /// weight). The scale is applied after the class draw, so the base
  /// source's arrival/size stream is untouched — "heavy class, heavy
  /// jobs" regimes stay bitwise reproducible and round-trip through the
  /// trace like any other sizes.
  ClassMixWorkload(std::shared_ptr<WorkloadSource> base,
                   std::vector<double> weights,
                   std::vector<double> size_scales);

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] std::vector<TraceJob> generate(double horizon,
                                               Rng& arrival_rng,
                                               Rng& workload_rng) override;

  [[nodiscard]] int num_classes() const noexcept {
    return static_cast<int>(cumulative_.size());
  }

 private:
  std::shared_ptr<WorkloadSource> base_;
  std::vector<double> cumulative_;   // normalized cumulative weights
  std::vector<double> size_scales_;  // per-class size multipliers; may be empty
  std::string name_;                 // "class-mix(<base>)"
};

/// Replays a fixed trace (recorded by the simulator or read from a file).
/// Jobs are stably sorted by arrival on construction; generate() returns
/// the prefix with arrival < horizon and ignores both generators.
class TraceWorkloadSource final : public WorkloadSource {
 public:
  explicit TraceWorkloadSource(std::vector<TraceJob> jobs);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "trace";
  }
  [[nodiscard]] std::vector<TraceJob> generate(double horizon,
                                               Rng& arrival_rng,
                                               Rng& workload_rng) override;

  [[nodiscard]] const std::vector<TraceJob>& jobs() const noexcept {
    return jobs_;
  }

 private:
  std::vector<TraceJob> jobs_;
};

enum class WorkloadKind {
  kPoisson,
  kBursty,
  kDiurnal,
  kHeavyTail,
  kFlashCrowd,
};

[[nodiscard]] std::string_view workload_name(WorkloadKind kind) noexcept;

/// All synthetic kinds, in a stable display order.
[[nodiscard]] std::span<const WorkloadKind> all_workload_kinds() noexcept;

/// Builds a synthetic source of `kind` calibrated to offer the same
/// expected arrival volume as a Poisson process at `rate` over `horizon`
/// (diurnal gets whole modulation cycles; bursty a 25% duty cycle; the
/// heavy tail a bounded Pareto whose mean approximates the LogNormal's).
[[nodiscard]] std::unique_ptr<WorkloadSource> make_workload(
    WorkloadKind kind, double rate, double horizon, LogNormalSize size = {});

}  // namespace gridsched
