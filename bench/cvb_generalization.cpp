// Generalization check beyond the paper: does the Table 2 conclusion (cMA
// beats the Braun GA on consistent/semi-consistent grids) survive a change
// of instance generator? The paper's conclusions mention ongoing work on
// further "instances generated according to the ETC model" — here the CVB
// (coefficient-of-variation, gamma-based) method replaces the range-based
// one, at the same shapes and budgets.
#include "bench_common.h"

#include "etc/cvb_instance.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Generalization: Table 2 comparison on CVB instances", args);

  std::vector<CvbInstanceSpec> specs;
  for (Consistency consistency :
       {Consistency::kConsistent, Consistency::kInconsistent,
        Consistency::kSemiConsistent}) {
    for (auto [v_task, v_mach] : {std::pair{0.9, 0.9}, std::pair{0.9, 0.1},
                                  std::pair{0.1, 0.9}, std::pair{0.1, 0.1}}) {
      CvbInstanceSpec spec;
      spec.num_jobs = args.jobs;
      spec.num_machines = args.machines;
      spec.consistency = consistency;
      spec.v_task = v_task;
      spec.v_machine = v_mach;
      specs.push_back(spec);
    }
  }

  std::vector<EtcMatrix> instances;
  instances.reserve(specs.size());
  for (const auto& spec : specs) {
    instances.push_back(generate_cvb_instance(spec));
  }

  std::vector<SeededRun> jobs;
  for (const EtcMatrix& etc : instances) {
    const EtcMatrix* etc_ptr = &etc;
    jobs.push_back([etc_ptr, &args](std::uint64_t seed) {
      BraunGaConfig config;
      config.stop = StopCondition{.max_time_ms = args.time_ms};
      config.seed = seed;
      return BraunGa(config).run(*etc_ptr);
    });
    jobs.push_back([etc_ptr, &args](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      return CellularMemeticAlgorithm(config).run(*etc_ptr);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  TablePrinter table({"Instance", "GA", "cMA", "d%"});
  int cma_wins_cs = 0;
  int total_cs = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const double ga = results[2 * i].makespan.min;
    const double cma = results[2 * i + 1].makespan.min;
    if (specs[i].consistency != Consistency::kInconsistent) {
      ++total_cs;
      cma_wins_cs += (cma < ga) ? 1 : 0;
    }
    table.add_row({specs[i].name(), TablePrinter::num(ga, 1),
                   TablePrinter::num(cma, 1),
                   TablePrinter::pct(percent_delta(ga, cma))});
  }
  table.print(std::cout);
  std::cout << "\ncMA wins " << cma_wins_cs << "/" << total_cs
            << " consistent + semi-consistent CVB instances (Table 2's "
               "conclusion generalizes if this stays high)\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Generalization of Table 2 to CVB-generated instances");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
