// Reproduces Fig. 3 of the paper: makespan reduction over execution time
// for the neighborhood patterns (Panmictic, L5, L9, C9, C13). Expected
// shape: panmictic worst; L5 drops fastest early; C9 best in the long run.
#include "bench_common.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Fig. 3: makespan vs time per neighborhood pattern", args);
  const EtcMatrix etc = tuning_instance(args);

  std::vector<CmaVariant> variants;
  for (NeighborhoodKind kind :
       {NeighborhoodKind::kPanmictic, NeighborhoodKind::kL5,
        NeighborhoodKind::kL9, NeighborhoodKind::kC9,
        NeighborhoodKind::kC13}) {
    variants.push_back(
        {std::string(neighborhood_name(kind)),
         [kind](CmaConfig& config) { config.neighborhood = kind; }});
  }
  const std::vector<NamedSeries> series = sweep_variants(args, etc, variants);
  print_series_table(std::cout, series, 0.0, args.time_ms, 10);
  if (!args.csv_dir.empty()) {
    write_series_csv(args.csv_dir + "/fig3_neighborhood.csv", series, 0.0,
                     args.time_ms, 50);
  }

  double panmictic_final = series[0].points.back().best_makespan;
  double best_local = panmictic_final;
  std::string best_name = "Panmictic";
  for (std::size_t i = 1; i < series.size(); ++i) {
    const double v = series[i].points.back().best_makespan;
    if (v < best_local) {
      best_local = v;
      best_name = series[i].name;
    }
  }
  std::cout << "\nbest pattern at budget end: " << best_name
            << " (the paper finds C9 best in the long run, panmixia worst)\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Fig. 3: makespan reduction per neighborhood pattern");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
