// Reproduces Table 4 of the paper: flowtime of the LJFR-SJFR constructive
// seed vs the cMA's best, with the improvement percentage.
#include "bench_common.h"

#include "common/stats.h"
#include "core/individual.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Table 4: flowtime, LJFR-SJFR vs cMA", args);
  const auto instances = benchmark_instances(args);

  std::vector<SeededRun> jobs;
  for (const auto& instance : instances) {
    const EtcMatrix* etc = &instance.etc;
    jobs.push_back([etc, &args](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      return CellularMemeticAlgorithm(config).run(*etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  std::vector<std::string> headers = {
      "Instance",          "LJFR-SJFR (meas)", "cMA (meas)", "improv% (meas)",
      "LJFR-SJFR (paper)", "cMA (paper)",      "improv% (paper)"};
  if (args.gap) {
    headers.insert(headers.begin() + 4, {"flow LB", "cMA gap%"});
  }
  TablePrinter table(headers);

  obs::BenchReport report;
  report.bench = "table4_flowtime_vs_ljfr";
  double worst_improvement = 100.0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::string& label = instances[i].label;
    const EtcMatrix& etc = instances[i].etc;
    const Individual seed =
        make_individual(ljfr_sjfr(etc), etc, FitnessWeights{});

    // "Results for flowtime parameter": the best flowtime observed across
    // the runs, and the % improvement over the LJFR-SJFR starting point.
    const double cma_flow = results[i].flowtime.min;
    const double improvement =
        (seed.objectives.flowtime - cma_flow) / seed.objectives.flowtime *
        100.0;
    worst_improvement = std::min(worst_improvement, improvement);

    const auto paper = paper_reference(label);
    const double paper_improvement =
        paper ? (paper->ljfr_sjfr_flowtime - paper->cma_flowtime) /
                    paper->ljfr_sjfr_flowtime * 100.0
              : 0.0;
    std::vector<std::string> row = {
        label,
        TablePrinter::num(seed.objectives.flowtime),
        TablePrinter::num(cma_flow),
        TablePrinter::pct(improvement, 1),
        paper ? TablePrinter::num(paper->ljfr_sjfr_flowtime) : "-",
        paper ? TablePrinter::num(paper->cma_flowtime) : "-",
        paper ? TablePrinter::pct(paper_improvement, 1) : "-"};
    if (args.gap) {
      // Flowtime has no LP relaxation in the repo; the closed-form floor
      // (every job alone on its fastest machine, core/bounds.h) anchors it.
      const double flow_lb = flowtime_lower_bound(etc);
      const double gap = bounds::optimality_gap_pct(cma_flow, flow_lb);
      row.insert(row.begin() + 4,
                 {TablePrinter::num(flow_lb),
                  std::isfinite(gap) ? TablePrinter::num(gap, 2) : "-"});

      obs::BenchVerdict verdict;
      verdict.name = label;
      verdict.metrics.emplace_back("cma_flowtime", cma_flow);
      obs::add_gap_metric(verdict, "cma_flowtime", cma_flow, flow_lb);
      verdict.ok = cma_flow >= flow_lb * (1.0 - 1e-9);
      report.verdicts.push_back(std::move(verdict));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nworst-case improvement over the seed: "
            << TablePrinter::num(worst_improvement, 1)
            << "% (the paper reports 22-90% across classes; every row must "
               "be positive)\n";
  return finish_report(report, args);
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Table 4: flowtime, LJFR-SJFR seed vs cMA");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
