// Replacement-operator study: reruns the topic of the paper's reference
// [21] (Xhafa, BIOMA 2006, "An experimental study on GA replacement
// operators for scheduling on grids") inside this codebase — the same
// steady-state GA with only its replacement rule varied, plus the cMA for
// scale. The Struggle rule (replace-most-similar) is the one the paper's
// Tables 3/5 baseline uses.
#include "bench_common.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Ablation: steady-state GA replacement policies", args);
  const EtcMatrix etc = tuning_instance(args);

  const std::vector<ReplacementPolicy> policies{
      ReplacementPolicy::kWorst, ReplacementPolicy::kRandom,
      ReplacementPolicy::kOldest, ReplacementPolicy::kMostSimilar,
      ReplacementPolicy::kDeterministicCrowding};

  std::vector<SeededRun> jobs;
  for (ReplacementPolicy policy : policies) {
    jobs.push_back([&, policy](std::uint64_t seed) {
      SteadyStateGaConfig config;
      config.stop = StopCondition{.max_time_ms = args.time_ms};
      config.seed = seed;
      config.replacement = policy;
      return SteadyStateGa(config).run(etc);
    });
  }
  jobs.push_back([&](std::uint64_t seed) {
    CmaConfig config = paper_cma_config(args);
    config.seed = seed;
    return CellularMemeticAlgorithm(config).run(etc);
  });
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  TablePrinter table({"policy", "makespan (mean)", "makespan (best)",
                      "flowtime (mean)"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    table.add_row({std::string(replacement_name(policies[i])),
                   TablePrinter::num(results[i].makespan.mean),
                   TablePrinter::num(results[i].makespan.min),
                   TablePrinter::num(results[i].flowtime.mean)});
  }
  table.add_separator();
  const auto& cma = results.back();
  table.add_row({"cMA (Table 1)", TablePrinter::num(cma.makespan.mean),
                 TablePrinter::num(cma.makespan.min),
                 TablePrinter::num(cma.flowtime.mean)});
  table.print(std::cout);
  std::cout << "\nexpected: elitist rules (worst/similar) lead the plain "
               "GA variants; the diversity-preserving Struggle rule ages "
               "best on longer budgets; the cMA tops the list (the paper's "
               "overall conclusion)\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Ablation: replacement policies for the steady-state GA");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
