// Section 5.1's robustness claim: "the standard deviation of the best
// makespan from the averaged makespan is very small (roughly 1%)".
// This bench reports mean, stddev and the coefficient of variation of the
// per-run best makespan over the 12 instances.
#include "bench_common.h"

#include "common/stats.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Robustness: makespan spread across independent cMA runs",
               args);
  const auto instances = benchmark_instances(args);

  std::vector<SeededRun> jobs;
  for (const auto& instance : instances) {
    const EtcMatrix* etc = &instance.etc;
    jobs.push_back([etc, &args](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      return CellularMemeticAlgorithm(config).run(*etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  TablePrinter table(
      {"Instance", "mean", "stddev", "cv%", "best", "worst"});
  double worst_cv = 0.0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& cma = results[i];
    const double cv = cma.makespan.mean > 0
                          ? cma.makespan.stddev / cma.makespan.mean * 100.0
                          : 0.0;
    worst_cv = std::max(worst_cv, cv);
    table.add_row({instances[i].label, TablePrinter::num(cma.makespan.mean),
                   TablePrinter::num(cma.makespan.stddev),
                   TablePrinter::num(cv, 2),
                   TablePrinter::num(cma.makespan.min),
                   TablePrinter::num(cma.makespan.max)});
  }
  table.print(std::cout);
  std::cout << "\nworst coefficient of variation: "
            << TablePrinter::num(worst_cv, 2)
            << "% (the paper reports roughly 1%)\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Robustness: stddev of best makespan across runs");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
