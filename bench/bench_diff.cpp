// Diffs two BENCH_*.json artifacts and fails on perf regression.
//
//   bench_diff BASELINE.json CANDIDATE.json [--tolerance PCT] [--gate-time]
//
// Prints a per-metric verdict table (percent deltas, CI95 overlap, gated
// status) and exits 1 when any gated metric regresses beyond the
// tolerance or a verdict's ok flag flips true -> false. CI runs it
// against the committed baselines in bench/baselines/ after every bench
// smoke run; see docs/observability.md for how to refresh a baseline.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_diff.h"
#include "obs/json.h"

namespace {

constexpr const char* kUsage =
    "usage: bench_diff BASELINE.json CANDIDATE.json"
    " [--tolerance PCT] [--gate-time]\n"
    "\n"
    "  Compares two bench verdict artifacts metric by metric. Exits 1 when\n"
    "  a gated metric worsens beyond the tolerance (default 5%) with\n"
    "  disjoint CI95 intervals, or when a verdict's ok flag flips to\n"
    "  false. Wall-clock metrics (*_ms, overshoot) are informational\n"
    "  unless --gate-time is given.\n";

std::optional<gridsched::obs::JsonValue> load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_diff: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto value = gridsched::obs::JsonValue::parse(buffer.str(), &error);
  if (!value) {
    std::cerr << "bench_diff: " << path << ": " << error << "\n";
    return std::nullopt;
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  gridsched::obs::DiffOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--gate-time") {
      options.gate_time = true;
    } else if (arg == "--tolerance") {
      if (i + 1 >= argc) {
        std::cerr << "bench_diff: --tolerance needs a value\n" << kUsage;
        return 2;
      }
      options.tolerance_pct = std::strtod(argv[++i], nullptr);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      options.tolerance_pct =
          std::strtod(arg.c_str() + std::string("--tolerance=").size(),
                      nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bench_diff: unknown flag " << arg << "\n" << kUsage;
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::cerr << kUsage;
    return 2;
  }

  const auto baseline = load_json(positional[0]);
  const auto candidate = load_json(positional[1]);
  if (!baseline || !candidate) return 2;

  std::string error;
  const auto report = gridsched::obs::diff_bench_reports(
      *baseline, *candidate, options, &error);
  if (!report) {
    std::cerr << "bench_diff: " << error << "\n";
    return 2;
  }
  std::cout << "baseline:  " << positional[0] << "\n"
            << "candidate: " << positional[1] << "\n";
  gridsched::obs::print_diff_report(*report, std::cout);
  return report->regression ? 1 : 0;
}
