// Reproduces Fig. 4 of the paper: makespan reduction over execution time
// for N-tournament selection with N = 3, 5, 7. Expected shape: all three
// close, N = 3 slightly ahead.
#include "bench_common.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Fig. 4: makespan vs time per tournament size", args);
  const EtcMatrix etc = tuning_instance(args);

  std::vector<CmaVariant> variants;
  for (int n : {3, 5, 7}) {
    variants.push_back(
        {"Ntour(" + std::to_string(n) + ")",
         [n](CmaConfig& config) { config.selection.tournament_size = n; }});
  }
  const std::vector<NamedSeries> series = sweep_variants(args, etc, variants);
  print_series_table(std::cout, series, 0.0, args.time_ms, 10);
  if (!args.csv_dir.empty()) {
    write_series_csv(args.csv_dir + "/fig4_selection.csv", series, 0.0,
                     args.time_ms, 50);
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i].points.back().best_makespan <
        series[best].points.back().best_makespan) {
      best = i;
    }
  }
  std::cout << "\nbest at budget end: " << series[best].name
            << " (the paper reports similar behaviour for all three, N=3 "
               "best)\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Fig. 4: makespan reduction per N-tournament size");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
