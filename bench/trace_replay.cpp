// Trace-driven workloads: single queue vs sharded service per scenario.
//
//   $ ./trace_replay [--minutes 4] [--budget-ms 15] [--seeds 3]
//
// The Braun-style batches of the paper and the Poisson benches of PR 1/2
// say nothing about bursty, diurnal or heavy-tailed traffic — the
// patterns real grids actually serve, and the ones under which scheduler
// rankings flip. This bench replays every synthetic workload scenario
// (poisson, bursty, diurnal, heavy-tail, flash-crowd, all calibrated to
// the same offered load) through the sharded scheduling service at 1/2/4
// shards and EQUAL TOTAL BUDGET, reporting makespan and mean flowtime
// with 95% CIs over `--seeds` replications. A scenario run that drops a
// job (completed != arrived) fails the bench.
//
// It also proves the recorder loop end to end: for each scenario, one run
// is recorded via GridSimulator::arrival_trace(), serialized through the
// trace format (workload/trace_io.h) and replayed with
// TraceWorkloadSource under a deterministic scheduler — the per-job
// records must come back bit-identical. (The service itself races under a
// wall-clock budget, so its commits are not replay-stable; determinism is
// a property of the trace + scheduler, which is exactly what the
// round-trip isolates.) `--record DIR` additionally writes each
// scenario's trace to DIR/trace_<scenario>.csv as reusable fixtures.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/table.h"
#include "common/cli.h"
#include "common/stats.h"
#include "service/sharded_driver.h"
#include "workload/trace_io.h"

namespace gridsched {
namespace {

struct ScenarioOutcome {
  RunningStats makespan;
  RunningStats flowtime;
  RunningStats utilization;
  RunningStats cpu_ms;
  bool dropped = false;
};

struct RoundTrip {
  bool identical = false;
  std::vector<TraceJob> trace;  // the recorded stream, for --record
};

/// Record one run under a deterministic scheduler, round-trip the trace
/// through its text format, replay, and compare every per-job record.
RoundTrip record_and_replay(const SimConfig& config) {
  GridSimulator recorded(config);
  HeuristicBatchScheduler record_sched(HeuristicKind::kMinMin);
  (void)recorded.run(record_sched);
  const std::vector<SimJobRecord> original = recorded.job_records();

  RoundTrip result;
  result.trace = recorded.arrival_trace();
  std::ostringstream out;
  write_trace(out, result.trace);
  std::istringstream in(out.str());
  SimConfig replay_config = config;
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(read_trace(in));
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler replay_sched(HeuristicKind::kMinMin);
  (void)replayed.run(replay_sched);

  const std::vector<SimJobRecord>& replay = replayed.job_records();
  if (replay.size() != original.size()) return result;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const SimJobRecord& a = original[i];
    const SimJobRecord& b = replay[i];
    if (a.arrival != b.arrival || a.start != b.start ||
        a.finish != b.finish || a.machine != b.machine ||
        a.attempts != b.attempts) {
      return result;
    }
  }
  result.identical = true;
  return result;
}

}  // namespace
}  // namespace gridsched

int main(int argc, char** argv) {
  using namespace gridsched;

  CliParser cli("Workload scenarios (trace replay) across shard counts");
  cli.flag("minutes", "4", "simulated minutes of job arrivals");
  cli.flag("budget-ms", "15", "total wall-clock budget per activation");
  cli.flag("rate", "6", "offered load, jobs per simulated second");
  cli.flag("period", "30", "scheduler activation period (simulated s)");
  cli.flag("machines", "48", "grid machines");
  cli.flag("classes", "3", "job/machine classes of the grid (0 = none)");
  cli.flag("seed", "7", "base simulation seed");
  cli.flag("seeds", "3", "repetitions per configuration (mean ± 95% CI)");
  cli.flag("record", "", "also write each scenario's trace to this directory");
  if (!cli.parse(argc, argv)) return 0;

  SimConfig base;
  base.horizon = cli.get_double("minutes") * 60.0;
  base.arrival_rate = cli.get_double("rate");
  base.scheduler_period = cli.get_double("period");
  base.num_machines = static_cast<int>(cli.get_int("machines"));
  base.mips_min = 500.0;
  base.mips_max = 2'000.0;
  base.num_job_classes = static_cast<int>(cli.get_int("classes"));
  base.seed = static_cast<std::uint64_t>(cli.get_double("seed"));
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const double budget_ms = cli.get_double("budget-ms");
  const std::vector<int> shard_counts = {1, 2, 4};

  std::cout << "=== workload scenarios x shard counts (equal total budget) "
            << "===\n"
            << base.arrival_rate << " jobs/s offered for " << base.horizon
            << " s, " << base.num_machines << " machines, period "
            << base.scheduler_period << " s, budget " << budget_ms
            << " ms/activation, " << seeds << " seed(s) from " << base.seed
            << "\n\n";

  bool acceptance_ok = true;
  TablePrinter table({"scenario", "shards", "makespan (s)", "flowtime (s)",
                      "util", "cpu (ms)", "jobs"});
  for (const WorkloadKind kind : all_workload_kinds()) {
    for (const int num_shards : shard_counts) {
      ScenarioOutcome outcome;
      RunningStats arrived;
      for (int rep = 0; rep < seeds; ++rep) {
        SimConfig sim_config = base;
        sim_config.seed = base.seed + static_cast<std::uint64_t>(rep);
        sim_config.workload = make_workload(kind, base.arrival_rate,
                                            base.horizon);
        GridSimulator sim(sim_config);
        ServiceConfig service_config;
        service_config.num_shards = num_shards;
        service_config.routing = RoutingKind::kLeastBacklog;
        service_config.total_budget_ms = budget_ms;
        service_config.seed = sim_config.seed;
        GridSchedulingService service(service_config);
        const ShardedSimReport report = run_sharded(sim, service);
        outcome.makespan.add(report.global.makespan);
        outcome.flowtime.add(report.global.mean_flowtime);
        outcome.utilization.add(report.global.utilization);
        outcome.cpu_ms.add(report.global.scheduler_cpu_ms);
        arrived.add(static_cast<double>(report.global.jobs_arrived));
        if (report.global.jobs_completed != report.global.jobs_arrived) {
          outcome.dropped = true;
        }
      }
      if (outcome.dropped) acceptance_ok = false;
      table.add_row({num_shards == shard_counts.front()
                         ? std::string(workload_name(kind))
                         : "",
                     std::to_string(num_shards),
                     TablePrinter::mean_ci(outcome.makespan, 1),
                     TablePrinter::mean_ci(outcome.flowtime, 1),
                     TablePrinter::num(outcome.utilization.mean(), 2),
                     TablePrinter::num(outcome.cpu_ms.mean(), 0),
                     TablePrinter::num(arrived.mean(), 0) +
                         (outcome.dropped ? " DROPPED" : "")});
    }
    if (kind != all_workload_kinds().back()) table.add_separator();
  }
  table.print(std::cout);

  std::cout << "\n--- record -> replay round-trips (deterministic "
            << "scheduler) ---\n";
  for (const WorkloadKind kind : all_workload_kinds()) {
    SimConfig sim_config = base;
    sim_config.workload =
        make_workload(kind, base.arrival_rate, base.horizon);
    const RoundTrip round_trip = record_and_replay(sim_config);
    if (!round_trip.identical) acceptance_ok = false;
    std::cout << workload_name(kind) << ": "
              << (round_trip.identical ? "bit-identical" : "DIVERGED")
              << "\n";
    if (const std::string dir = cli.get("record"); !dir.empty()) {
      const std::string path =
          dir + "/trace_" + std::string(workload_name(kind)) + ".csv";
      write_trace_file(path, round_trip.trace);
      std::cout << "  recorded " << round_trip.trace.size() << " jobs to "
                << path << "\n";
    }
  }

  std::cout << (acceptance_ok
                    ? "\nall scenarios completed without drops; replays "
                      "bit-identical\n"
                    : "\nFAILURE: a scenario dropped jobs or a replay "
                      "diverged\n");
  return acceptance_ok ? 0 : 1;
}
