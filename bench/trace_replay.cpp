// Trace-driven workloads: single queue vs sharded service per scenario,
// plus the trace-I/O acceptance gates of the streaming replay path.
//
//   $ ./trace_replay [--minutes 4] [--budget-ms 15] [--seeds 3]
//                    [--swf FILE] [--stress-jobs N] [--json PATH]
//
// The Braun-style batches of the paper and the Poisson benches of PR 1/2
// say nothing about bursty, diurnal or heavy-tailed traffic — the
// patterns real grids actually serve, and the ones under which scheduler
// rankings flip. This bench replays every synthetic workload scenario
// (poisson, bursty, diurnal, heavy-tail, flash-crowd, all calibrated to
// the same offered load) through the sharded scheduling service at 1/2/4
// shards and EQUAL TOTAL BUDGET, reporting makespan and mean flowtime
// with 95% CIs over `--seeds` replications. A scenario run that drops a
// job (completed != arrived) fails the bench.
//
// It also proves the recorder loop end to end: for each scenario, one run
// is recorded via GridSimulator::arrival_trace(), serialized through the
// trace format (workload/trace_io.h) and replayed with
// TraceWorkloadSource under a deterministic scheduler — the per-job
// records must come back bit-identical. (The service itself races under a
// wall-clock budget, so its commits are not replay-stable; determinism is
// a property of the trace + scheduler, which is exactly what the
// round-trip isolates.) `--record DIR` additionally writes each
// scenario's trace to DIR/trace_<scenario>.csv as reusable fixtures.
//
// The PR 8 gates on top (see docs/workloads.md):
//
//   churn round-trip   a churny run's failures are recorded next to its
//                      arrivals (churn sidecar), serialized through text
//                      and replayed via SimConfig::churn_replay — records
//                      AND churn must come back bit-identical.
//   --swf FILE         imports a real Standard Workload Format excerpt
//                      twice — materialized (read_swf) and streaming
//                      (SwfStreamReader) — runs both through the
//                      simulator under churn with a deterministic
//                      scheduler and demands bit-identical per-job
//                      records; then replays the stream through the
//                      sharded service with lossless accounting.
//   --stress-jobs N    writes an N-job synthetic SWF to disk row by row,
//                      streams it through the sharded service (a
//                      deterministic evaluation-bounded configuration)
//                      and gates the O(1)-memory contract: the in-flight
//                      window (peak_resident_jobs) must stay a small
//                      fraction of the trace; peak process RSS is
//                      reported informationally.
//
// `--json PATH` writes every verdict as a BENCH_trace_replay.json
// artifact for bench_diff to compare across commits.
#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/table.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "obs/bench_report.h"
#include "service/sharded_driver.h"
#include "workload/swf_io.h"
#include "workload/trace_io.h"

namespace gridsched {
namespace {

struct ScenarioOutcome {
  RunningStats makespan;
  RunningStats flowtime;
  RunningStats utilization;
  RunningStats cpu_ms;
  bool dropped = false;
};

struct RoundTrip {
  bool identical = false;
  std::vector<TraceJob> trace;  // the recorded stream, for --record
};

bool same_record(const SimJobRecord& a, const SimJobRecord& b) {
  return a.arrival == b.arrival && a.start == b.start &&
         a.finish == b.finish && a.machine == b.machine &&
         a.attempts == b.attempts && a.rejected == b.rejected;
}

/// Record one run under a deterministic scheduler, round-trip the trace
/// through its text format, replay, and compare every per-job record.
RoundTrip record_and_replay(const SimConfig& config) {
  GridSimulator recorded(config);
  HeuristicBatchScheduler record_sched(HeuristicKind::kMinMin);
  (void)recorded.run(record_sched);
  const std::vector<SimJobRecord> original = recorded.job_records();

  RoundTrip result;
  result.trace = recorded.arrival_trace();
  std::ostringstream out;
  write_trace(out, result.trace);
  std::istringstream in(out.str());
  SimConfig replay_config = config;
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(read_trace(in));
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler replay_sched(HeuristicKind::kMinMin);
  (void)replayed.run(replay_sched);

  const std::vector<SimJobRecord>& replay = replayed.job_records();
  if (replay.size() != original.size()) return result;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (!same_record(original[i], replay[i])) return result;
  }
  result.identical = true;
  return result;
}

struct ChurnRoundTrip {
  bool identical = false;
  std::size_t churn_events = 0;
  int jobs_requeued = 0;
};

/// The churn sidecar loop: record a churny run, serialize arrivals AND
/// failures through text, replay with the drawn process off — records
/// and applied churn must come back bit for bit.
ChurnRoundTrip churn_round_trip(const SimConfig& base) {
  SimConfig config = base;
  config.machine_mtbf = config.scheduler_period * 4.0;
  config.machine_mttr = config.scheduler_period;
  GridSimulator recorded(config);
  HeuristicBatchScheduler record_sched(HeuristicKind::kMinMin);
  const SimMetrics original = recorded.run(record_sched);

  ChurnRoundTrip result;
  result.churn_events = recorded.churn_trace().size();
  result.jobs_requeued = original.jobs_requeued;
  if (result.churn_events == 0) return result;  // weak draw = failure

  std::ostringstream arrivals_out;
  write_trace(arrivals_out, recorded.arrival_trace());
  std::ostringstream churn_out;
  write_churn_trace(churn_out, recorded.churn_trace());

  SimConfig replay_config = config;
  replay_config.machine_mtbf = 0.0;
  replay_config.machine_mttr = 0.0;
  std::istringstream arrivals_in(arrivals_out.str());
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(read_trace(arrivals_in));
  std::istringstream churn_in(churn_out.str());
  replay_config.churn_replay = std::make_shared<const std::vector<ChurnEvent>>(
      read_churn_trace(churn_in));
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler replay_sched(HeuristicKind::kMinMin);
  (void)replayed.run(replay_sched);

  if (replayed.churn_trace() != recorded.churn_trace()) return result;
  const auto& replay = replayed.job_records();
  const auto& records = recorded.job_records();
  if (replay.size() != records.size()) return result;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!same_record(records[i], replay[i])) return result;
  }
  result.identical = true;
  return result;
}

/// Peak resident set size of this process so far, in MiB (Linux
/// ru_maxrss is KiB). Informational: absolute RSS depends on the
/// allocator and everything the bench ran before this point.
double peak_rss_mb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Writes an n-job synthetic SWF row by row — never materializing the
/// trace — with arrivals at `rate` jobs/s and LogNormal run times sized
/// so a ~48-machine grid sits at moderate load. Returns the horizon
/// (last arrival + 1).
double write_stress_swf(const std::string& path, long jobs, double rate) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "; synthetic SWF stress trace, " << jobs << " jobs at " << rate
      << " jobs/s\n";
  Rng rng(2026);
  double t = 0.0;
  for (long i = 0; i < jobs; ++i) {
    t += rng.exponential(rate);
    // run seconds = exp(N(7, 1)) / 1000 reference MIPS -> mean ~1.8 s of
    // work at reference speed, a moderate offered load on the grid.
    const double run_seconds = std::exp(rng.normal(7.0, 1.0)) / 1000.0;
    const double requested =
        i % 4 == 0 ? run_seconds * 3.0 + 300.0 : -1.0;  // 25% deadlines
    write_swf_row(out, i + 1, t, run_seconds, /*procs=*/1,
                  /*user=*/static_cast<int>(i % 50),
                  /*queue=*/static_cast<int>(i % 3), requested);
  }
  return t + 1.0;
}

}  // namespace
}  // namespace gridsched

int main(int argc, char** argv) {
  using namespace gridsched;

  CliParser cli("Workload scenarios (trace replay) across shard counts");
  cli.flag("minutes", "4", "simulated minutes of job arrivals");
  cli.flag("budget-ms", "15", "total wall-clock budget per activation");
  cli.flag("rate", "6", "offered load, jobs per simulated second");
  cli.flag("period", "30", "scheduler activation period (simulated s)");
  cli.flag("machines", "48", "grid machines");
  cli.flag("classes", "3", "job/machine classes of the grid (0 = none)");
  cli.flag("seed", "7", "base simulation seed");
  cli.flag("seeds", "3", "repetitions per configuration (mean ± 95% CI)");
  cli.flag("record", "", "also write each scenario's trace to this directory");
  cli.flag("swf", "", "SWF log to import and gate streaming parity on");
  cli.flag("stress-jobs", "0", "size of the synthetic SWF streaming stress "
                               "(0 = skip)");
  cli.flag("stress-rate", "20", "stress arrivals per simulated second");
  cli.flag("stress-file", "trace_replay_stress.swf",
           "scratch path for the stress trace (written row by row, "
           "deleted afterwards)");
  cli.flag("json", "", "write every verdict as machine-readable JSON to "
                       "this path (CI uploads it as the "
                       "BENCH_trace_replay.json perf artifact)");
  if (!cli.parse(argc, argv)) return 0;

  SimConfig base;
  base.horizon = cli.get_double("minutes") * 60.0;
  base.arrival_rate = cli.get_double("rate");
  base.scheduler_period = cli.get_double("period");
  base.num_machines = static_cast<int>(cli.get_int("machines"));
  base.mips_min = 500.0;
  base.mips_max = 2'000.0;
  base.num_job_classes = static_cast<int>(cli.get_int("classes"));
  base.seed = static_cast<std::uint64_t>(cli.get_double("seed"));
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const double budget_ms = cli.get_double("budget-ms");
  const std::vector<int> shard_counts = {1, 2, 4};

  obs::BenchReport bench_report;
  bench_report.bench = "trace_replay";

  std::cout << "=== workload scenarios x shard counts (equal total budget) "
            << "===\n"
            << base.arrival_rate << " jobs/s offered for " << base.horizon
            << " s, " << base.num_machines << " machines, period "
            << base.scheduler_period << " s, budget " << budget_ms
            << " ms/activation, " << seeds << " seed(s) from " << base.seed
            << "\n\n";

  bool acceptance_ok = true;
  TablePrinter table({"scenario", "shards", "makespan (s)", "flowtime (s)",
                      "util", "cpu (ms)", "jobs"});
  for (const WorkloadKind kind : all_workload_kinds()) {
    for (const int num_shards : shard_counts) {
      ScenarioOutcome outcome;
      RunningStats arrived;
      for (int rep = 0; rep < seeds; ++rep) {
        SimConfig sim_config = base;
        sim_config.seed = base.seed + static_cast<std::uint64_t>(rep);
        sim_config.workload = make_workload(kind, base.arrival_rate,
                                            base.horizon);
        GridSimulator sim(sim_config);
        ServiceConfig service_config;
        service_config.num_shards = num_shards;
        service_config.routing = RoutingKind::kLeastBacklog;
        service_config.total_budget_ms = budget_ms;
        service_config.seed = sim_config.seed;
        GridSchedulingService service(service_config);
        const ShardedSimReport report = run_sharded(sim, service);
        outcome.makespan.add(report.global.makespan);
        outcome.flowtime.add(report.global.mean_flowtime);
        outcome.utilization.add(report.global.utilization);
        outcome.cpu_ms.add(report.global.scheduler_cpu_ms);
        arrived.add(static_cast<double>(report.global.jobs_arrived));
        if (report.global.jobs_completed != report.global.jobs_arrived) {
          outcome.dropped = true;
        }
      }
      if (outcome.dropped) acceptance_ok = false;
      table.add_row({num_shards == shard_counts.front()
                         ? std::string(workload_name(kind))
                         : "",
                     std::to_string(num_shards),
                     TablePrinter::mean_ci(outcome.makespan, 1),
                     TablePrinter::mean_ci(outcome.flowtime, 1),
                     TablePrinter::num(outcome.utilization.mean(), 2),
                     TablePrinter::num(outcome.cpu_ms.mean(), 0),
                     TablePrinter::num(arrived.mean(), 0) +
                         (outcome.dropped ? " DROPPED" : "")});
    }
    if (kind != all_workload_kinds().back()) table.add_separator();
  }
  table.print(std::cout);

  std::cout << "\n--- record -> replay round-trips (deterministic "
            << "scheduler) ---\n";
  for (const WorkloadKind kind : all_workload_kinds()) {
    SimConfig sim_config = base;
    sim_config.workload =
        make_workload(kind, base.arrival_rate, base.horizon);
    const RoundTrip round_trip = record_and_replay(sim_config);
    if (!round_trip.identical) acceptance_ok = false;
    std::cout << workload_name(kind) << ": "
              << (round_trip.identical ? "bit-identical" : "DIVERGED")
              << "\n";
    if (const std::string dir = cli.get("record"); !dir.empty()) {
      const std::string path =
          dir + "/trace_" + std::string(workload_name(kind)) + ".csv";
      write_trace_file(path, round_trip.trace);
      std::cout << "  recorded " << round_trip.trace.size() << " jobs to "
                << path << "\n";
    }
  }

  // --- Churn sidecar round-trip: arrivals alone do not reproduce a
  // churny run; arrivals + recorded failures must. ---
  {
    const ChurnRoundTrip churn = churn_round_trip(base);
    if (!churn.identical) acceptance_ok = false;
    std::cout << "\nchurn round-trip: " << churn.churn_events
              << " failure(s), " << churn.jobs_requeued << " requeue(s) -> "
              << (churn.identical ? "bit-identical" : "DIVERGED") << "\n";
    bench_report.verdicts.push_back(obs::BenchVerdict{
        .name = "churn-round-trip",
        .ok = churn.identical,
        .metrics = {{"churn_events",
                     static_cast<double>(churn.churn_events)},
                    {"jobs_requeued",
                     static_cast<double>(churn.jobs_requeued)}},
        .histograms = {}});
  }

  // --- SWF import: materialized vs streaming parity under churn, then
  // the stream through the sharded service with lossless accounting. ---
  if (const std::string swf_path = cli.get("swf"); !swf_path.empty()) {
    std::size_t skipped = 0;
    const std::vector<TraceJob> jobs =
        read_swf_file(swf_path, SwfMapping{}, &skipped);
    double last_arrival = 0.0;
    for (const TraceJob& job : jobs) {
      last_arrival = std::max(last_arrival, job.arrival);
    }

    SimConfig swf_config = base;
    swf_config.horizon = last_arrival + 1.0;
    swf_config.machine_mtbf = base.scheduler_period * 4.0;
    swf_config.machine_mttr = base.scheduler_period;

    SimConfig materialized_config = swf_config;
    materialized_config.workload =
        std::make_shared<TraceWorkloadSource>(jobs);
    GridSimulator materialized(materialized_config);
    HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
    const SimMetrics metrics_a = materialized.run(sched_a);

    SimConfig streaming_config = swf_config;
    std::ifstream swf_stream(swf_path);
    streaming_config.stream =
        std::make_shared<SwfStreamReader>(swf_stream);
    GridSimulator streamed(streaming_config);
    std::vector<SimJobRecord> observed;
    streamed.set_job_observer(
        [&observed](const SimJobRecord& record, const TraceJob&) {
          observed.push_back(record);
        });
    HeuristicBatchScheduler sched_b(HeuristicKind::kMinMin);
    const SimMetrics metrics_b = streamed.run(sched_b);

    bool parity = observed.size() == materialized.job_records().size() &&
                  metrics_a.jobs_requeued == metrics_b.jobs_requeued &&
                  streamed.churn_trace() == materialized.churn_trace();
    if (parity) {
      for (std::size_t i = 0; i < observed.size(); ++i) {
        if (!same_record(observed[i], materialized.job_records()[i])) {
          parity = false;
          break;
        }
      }
    }
    if (!parity) acceptance_ok = false;

    // The same stream drives the sharded service without losing a job.
    std::ifstream swf_again(swf_path);
    SimConfig service_sim_config = swf_config;
    service_sim_config.machine_mtbf = 0.0;
    service_sim_config.machine_mttr = 0.0;
    service_sim_config.stream =
        std::make_shared<SwfStreamReader>(swf_again);
    GridSimulator service_sim(service_sim_config);
    ServiceConfig service_config;
    service_config.num_shards = 2;
    service_config.routing = RoutingKind::kLeastBacklog;
    service_config.total_budget_ms = budget_ms;
    service_config.seed = base.seed;
    GridSchedulingService service(service_config);
    const ShardedSimReport report = run_sharded(service_sim, service);
    const bool lossless = report.global.jobs_completed +
                              report.global.jobs_rejected ==
                          report.global.jobs_arrived;
    if (!lossless) acceptance_ok = false;

    std::cout << "\nswf import (" << swf_path << "): " << jobs.size()
              << " job(s), " << skipped << " skipped row(s), span "
              << TablePrinter::num(last_arrival, 0) << " s\n"
              << "  streaming parity under churn ("
              << streamed.churn_trace().size() << " failure(s)): "
              << (parity ? "bit-identical" : "DIVERGED") << "\n"
              << "  sharded service replay: " << report.global.jobs_completed
              << "/" << report.global.jobs_arrived << " completed -> "
              << (lossless ? "lossless" : "DROPPED") << "\n";
    bench_report.verdicts.push_back(obs::BenchVerdict{
        .name = "swf-streaming-parity",
        .ok = parity && lossless,
        .metrics = {{"jobs", static_cast<double>(jobs.size())},
                    {"skipped_rows", static_cast<double>(skipped)},
                    {"deadline_jobs",
                     static_cast<double>(metrics_a.deadline_jobs)},
                    {"service_completed",
                     static_cast<double>(report.global.jobs_completed)}},
        .histograms = {}});
  }

  // --- Streaming stress: an SWF far too large to materialize replays
  // through the sharded service in O(in-flight window) memory. ---
  if (const long stress_jobs = cli.get_int("stress-jobs"); stress_jobs > 0) {
    const std::string stress_path = cli.get("stress-file");
    const double horizon =
        write_stress_swf(stress_path, stress_jobs,
                         cli.get_double("stress-rate"));
    std::ifstream stress_stream(stress_path);
    SimConfig stress_config = base;
    stress_config.horizon = horizon;
    stress_config.stream = std::make_shared<SwfStreamReader>(stress_stream);
    GridSimulator sim(stress_config);
    // Evaluation-bounded service: deterministic (the gate diffs the
    // resident-window metric across commits), and the wall budget never
    // binds first.
    ServiceConfig service_config;
    service_config.num_shards = 4;
    service_config.routing = RoutingKind::kLeastBacklog;
    service_config.total_budget_ms = 60'000.0;
    service_config.member_stop = StopCondition{.max_evaluations = 60};
    service_config.seed = base.seed;
    GridSchedulingService service(service_config);
    Stopwatch wall;
    const ShardedSimReport report = run_sharded(sim, service);
    const double wall_ms = wall.elapsed_ms();
    std::remove(stress_path.c_str());

    const bool lossless = report.global.jobs_completed +
                              report.global.jobs_rejected ==
                          report.global.jobs_arrived;
    // The O(1)-memory gate: the in-flight window must stay a small
    // fraction of the trace — it scales with offered load and flowtime,
    // not with how many jobs the file holds.
    const bool bounded =
        report.global.peak_resident_jobs <
        std::max(static_cast<int>(stress_jobs / 10), 1'000);
    if (!lossless || !bounded) acceptance_ok = false;
    std::cout << "\nstreaming stress: " << report.global.jobs_arrived
              << " job(s) over " << TablePrinter::num(horizon, 0)
              << " s, peak resident " << report.global.peak_resident_jobs
              << " job(s), peak RSS "
              << TablePrinter::num(peak_rss_mb(), 0) << " MB, "
              << TablePrinter::num(wall_ms / 1000.0, 1) << " s wall -> "
              << (lossless && bounded ? "bounded + lossless" : "FAILED")
              << "\n";
    bench_report.verdicts.push_back(obs::BenchVerdict{
        .name = "streaming-stress",
        .ok = lossless && bounded,
        .metrics = {{"jobs_arrived",
                     static_cast<double>(report.global.jobs_arrived)},
                    {"peak_resident_jobs",
                     static_cast<double>(report.global.peak_resident_jobs)},
                    {"peak_rss_bound_mb", peak_rss_mb()},
                    {"wall_ms", wall_ms}},
        .histograms = {}});
  }

  if (!cli.get("json").empty()) {
    bench_report.ok = acceptance_ok;
    bench_report.write_file(cli.get("json"));
  }

  std::cout << (acceptance_ok
                    ? "\nall scenarios completed without drops; replays "
                      "bit-identical\n"
                    : "\nFAILURE: a scenario dropped jobs, a replay "
                      "diverged, or a streaming gate failed\n");
  return acceptance_ok ? 0 : 1;
}
