// Reproduces Table 2 of the paper: best makespan of the Braun-style GA vs
// the cMA over the 12 benchmark instances, plus the paper's published rows.
//
// With --gap (implied by --json) each row also reports how far both
// algorithms sit from the in-repo makespan lower bound (docs/bounds.md) —
// an absolute quality anchor next to the paper's relative Delta column.
#include "bench_common.h"

#include "common/stats.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Table 2: makespan, Braun et al. GA vs cMA", args);
  const auto instances = benchmark_instances(args);

  // One flat task matrix: (instance x {GA, cMA}) x runs, pool-saturating.
  std::vector<SeededRun> jobs;
  for (const auto& instance : instances) {
    const EtcMatrix* etc = &instance.etc;
    jobs.push_back([etc, &args](std::uint64_t seed) {
      BraunGaConfig config;
      config.stop = bench_stop(args);
      config.seed = seed;
      return BraunGa(config).run(*etc);
    });
    jobs.push_back([etc, &args](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      return CellularMemeticAlgorithm(config).run(*etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  std::vector<std::string> headers = {"Instance",  "GA (meas)",
                                      "cMA (meas)", "d% (meas)",
                                      "GA (paper)", "cMA (paper)",
                                      "d% (paper)"};
  if (args.gap) {
    headers.insert(headers.begin() + 4, {"LB", "cMA gap%"});
  }
  TablePrinter table(headers);

  obs::BenchReport report;
  report.bench = "table2_makespan_vs_braun_ga";
  int cma_wins = 0;
  int consistent_wins = 0;
  int consistent_total = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::string& label = instances[i].label;
    const double ga_best = results[2 * i].makespan.min;
    const double cma_best = results[2 * i + 1].makespan.min;
    // The paper's Delta column: how far the GA's best sits from the cMA's.
    const double measured_delta = percent_delta(ga_best, cma_best);
    cma_wins += (cma_best < ga_best) ? 1 : 0;
    if (label[2] == 'c' || label[2] == 's') {
      ++consistent_total;
      consistent_wins += (cma_best < ga_best) ? 1 : 0;
    }

    const auto paper = paper_reference(label);
    std::vector<std::string> row = {
        label,
        TablePrinter::num(ga_best),
        TablePrinter::num(cma_best),
        TablePrinter::pct(measured_delta),
        paper ? TablePrinter::num(paper->braun_ga_makespan) : "-",
        paper ? TablePrinter::num(paper->cma_makespan) : "-",
        paper ? TablePrinter::pct(percent_delta(paper->braun_ga_makespan,
                                                paper->cma_makespan))
              : "-"};
    if (args.gap) {
      const auto bound =
          bounds::makespan_bound(instances[i].etc, lp_options(args));
      row.insert(row.begin() + 4,
                 {TablePrinter::num(bound.value), gap_cell(cma_best, bound)});

      obs::BenchVerdict verdict;
      verdict.name = label;
      verdict.metrics.emplace_back("ga_makespan", ga_best);
      verdict.metrics.emplace_back("cma_makespan", cma_best);
      obs::add_gap_metric(verdict, "ga_makespan", ga_best, bound.value);
      obs::add_gap_metric(verdict, "cma_makespan", cma_best, bound.value);
      // A result below a proven lower bound is an evaluator bug.
      const double floor = bound.value * (1.0 - 1e-9);
      verdict.ok = ga_best >= floor && cma_best >= floor;
      report.verdicts.push_back(std::move(verdict));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\ncMA best-of-" << args.runs << " beats GA on " << cma_wins
            << "/12 instances (" << consistent_wins << "/" << consistent_total
            << " on consistent+semi-consistent; the paper reports wins on "
               "all 8 of those and losses on inconsistent ones)\n";
  return finish_report(report, args);
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Table 2: best makespan, Braun et al. GA vs cMA");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
