// Multi-objective extension (the paper's future work): approximate the
// (makespan, flowtime) Pareto front by sweeping the scalarization weight
// lambda through the cMA and archiving the non-dominated outcomes.
#include "bench_common.h"

#include <algorithm>

#include "core/pareto.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Pareto front via lambda sweep (future-work extension)",
               args);
  const EtcMatrix etc = tuning_instance(args);

  const std::vector<double> lambdas{0.0,  0.1, 0.25, 0.4, 0.5,
                                    0.65, 0.75, 0.85, 0.95, 1.0};
  std::vector<SeededRun> jobs;
  for (double lambda : lambdas) {
    jobs.push_back([&, lambda](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      config.weights.lambda = lambda;
      return CellularMemeticAlgorithm(config).run(etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  ParetoArchive archive;
  std::size_t offered = 0;
  for (const auto& result : results) {
    for (const auto& run : result.runs) {
      archive.offer(run.best);
      ++offered;
    }
  }

  const auto front = archive.front();
  // With --gap, anchor both axes of the front: the makespan corner against
  // the LP bound, the flowtime corner against the closed-form floor.
  bounds::MakespanBoundResult makespan_bound_result;
  double flow_lb = 0.0;
  if (args.gap) {
    makespan_bound_result = bounds::makespan_bound(etc, lp_options(args));
    flow_lb = flowtime_lower_bound(etc);
  }

  std::vector<std::string> headers = {"makespan", "flowtime",
                                      "mean flowtime"};
  if (args.gap) {
    headers.insert(headers.begin() + 1, "makespan gap%");
    headers.push_back("flowtime gap%");
  }
  TablePrinter table(headers);
  for (const auto& member : front) {
    std::vector<std::string> row = {
        TablePrinter::num(member.objectives.makespan, 1),
        TablePrinter::num(member.objectives.flowtime, 1),
        TablePrinter::num(member.objectives.mean_flowtime(etc.num_machines()),
                          1)};
    if (args.gap) {
      row.insert(row.begin() + 1,
                 gap_cell(member.objectives.makespan, makespan_bound_result));
      const double fgap =
          bounds::optimality_gap_pct(member.objectives.flowtime, flow_lb);
      row.push_back(std::isfinite(fgap) ? TablePrinter::num(fgap, 2) : "-");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n" << front.size() << " non-dominated solutions out of "
            << offered << " runs across " << lambdas.size()
            << " lambda values; the paper's fixed lambda=0.75 picks one "
               "point on this front\n";

  obs::BenchReport report;
  report.bench = "pareto_front";
  if (args.gap && !front.empty()) {
    // The front's corners: best makespan and best flowtime anyone achieved.
    double best_makespan = front.front().objectives.makespan;
    double best_flowtime = front.front().objectives.flowtime;
    for (const auto& member : front) {
      best_makespan = std::min(best_makespan, member.objectives.makespan);
      best_flowtime = std::min(best_flowtime, member.objectives.flowtime);
    }
    obs::BenchVerdict verdict;
    verdict.name = "front_corners";
    verdict.metrics.emplace_back("front_size",
                                 static_cast<double>(front.size()));
    verdict.metrics.emplace_back("best_makespan", best_makespan);
    verdict.metrics.emplace_back("best_flowtime", best_flowtime);
    obs::add_gap_metric(verdict, "best_makespan", best_makespan,
                        makespan_bound_result.value);
    obs::add_gap_metric(verdict, "best_flowtime", best_flowtime, flow_lb);
    verdict.ok =
        best_makespan >= makespan_bound_result.value * (1.0 - 1e-9) &&
        best_flowtime >= flow_lb * (1.0 - 1e-9);
    report.verdicts.push_back(std::move(verdict));
  }
  return finish_report(report, args);
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Pareto front of (makespan, flowtime) via lambda sweep");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
