// Multi-objective extension (the paper's future work): approximate the
// (makespan, flowtime) Pareto front by sweeping the scalarization weight
// lambda through the cMA and archiving the non-dominated outcomes.
#include "bench_common.h"

#include "core/pareto.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Pareto front via lambda sweep (future-work extension)",
               args);
  const EtcMatrix etc = tuning_instance(args);

  const std::vector<double> lambdas{0.0,  0.1, 0.25, 0.4, 0.5,
                                    0.65, 0.75, 0.85, 0.95, 1.0};
  std::vector<SeededRun> jobs;
  for (double lambda : lambdas) {
    jobs.push_back([&, lambda](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      config.weights.lambda = lambda;
      return CellularMemeticAlgorithm(config).run(etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  ParetoArchive archive;
  std::size_t offered = 0;
  for (const auto& result : results) {
    for (const auto& run : result.runs) {
      archive.offer(run.best);
      ++offered;
    }
  }

  const auto front = archive.front();
  TablePrinter table({"makespan", "flowtime", "mean flowtime"});
  for (const auto& member : front) {
    table.add_row({TablePrinter::num(member.objectives.makespan, 1),
                   TablePrinter::num(member.objectives.flowtime, 1),
                   TablePrinter::num(
                       member.objectives.mean_flowtime(etc.num_machines()),
                       1)});
  }
  table.print(std::cout);
  std::cout << "\n" << front.size() << " non-dominated solutions out of "
            << offered << " runs across " << lambdas.size()
            << " lambda values; the paper's fixed lambda=0.75 picks one "
               "point on this front\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Pareto front of (makespan, flowtime) via lambda sweep");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
