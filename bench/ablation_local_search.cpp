// Ablation beyond the paper: the design decisions DESIGN.md section 4
// documents for LMCTS — the pair-scan strategy (critical machine / full /
// sampled), the improvement objective (fitness vs makespan), and the
// iteration budget.
#include "bench_common.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Ablation: LMCTS scan strategy, LS objective, LS iterations",
               args);
  const EtcMatrix etc = tuning_instance(args);

  struct Variant {
    std::string name;
    std::function<void(CmaConfig&)> tweak;
    bool separator_after = false;
  };
  std::vector<Variant> variants{
      {"scan=critical-random-job (default)", [](CmaConfig&) {}, false},
      {"scan=critical-all-jobs",
       [](CmaConfig& c) { c.local_search.scan = LmctsScan::kCriticalAllJobs; },
       false},
      {"scan=full",
       [](CmaConfig& c) { c.local_search.scan = LmctsScan::kFull; }, false},
      {"scan=sampled(512)",
       [](CmaConfig& c) { c.local_search.scan = LmctsScan::kSampled; }, true},
      {"objective=fitness (default)", [](CmaConfig&) {}, false},
      {"objective=makespan",
       [](CmaConfig& c) { c.local_search.objective = LsObjective::kMakespan; },
       true},
      {"kind=VNS (move/LMCTS/chain ladder)",
       [](CmaConfig& c) { c.local_search.kind = LocalSearchKind::kVns; },
       true},
  };
  for (int iters : {1, 5, 15}) {
    variants.push_back({"ls_iterations=" + std::to_string(iters),
                        [iters](CmaConfig& c) {
                          c.local_search.iterations = iters;
                        },
                        false});
  }

  std::vector<SeededRun> jobs;
  for (const auto& variant : variants) {
    jobs.push_back([&, &tweak = variant.tweak](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      tweak(config);
      return CellularMemeticAlgorithm(config).run(etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  TablePrinter table({"variant", "makespan (mean)", "makespan (best)",
                      "evals/run (mean)"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& result = results[i];
    double evals = 0.0;
    for (const auto& run : result.runs) {
      evals += static_cast<double>(run.evaluations);
    }
    evals /= static_cast<double>(result.runs.size());
    table.add_row({variants[i].name, TablePrinter::num(result.makespan.mean),
                   TablePrinter::num(result.makespan.min),
                   TablePrinter::num(evals, 0)});
    if (variants[i].separator_after) table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\nreading guide: 'full' spends its budget on one very "
               "expensive scan per step; 'critical' (the default) gets most "
               "of the benefit at a fraction of the previews; the makespan "
               "objective ignores flowtime and may trade it away\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Ablation: local-search design decisions");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
