// Diversity study: the paper's core argument is that the structured
// (cellular) population "maintains a high diversity ... in many
// generations" compared to panmictic populations. This bench records mean
// pairwise Hamming distance and gene entropy over the run for the C9 mesh
// vs a panmictic population of the same size, at the same budget.
#include "bench_common.h"

#include "cma/diversity.h"

namespace gridsched::bench {
namespace {

struct DiversitySample {
  std::int64_t iteration;
  double distance;
  double entropy;
  double spread;
};

int run(const BenchArgs& args) {
  print_header("Diversity: C9 mesh vs panmictic population", args);
  const EtcMatrix etc = tuning_instance(args);

  auto trace_of = [&](NeighborhoodKind kind) {
    std::vector<DiversitySample> samples;
    CmaConfig config = paper_cma_config(args);
    config.seed = args.seed + 1;
    config.neighborhood = kind;
    config.observer = [&](std::int64_t iteration,
                          std::span<const Individual> population) {
      samples.push_back({iteration, mean_pairwise_distance(population),
                         mean_gene_entropy(population, etc.num_machines()),
                         fitness_spread(population)});
    };
    const auto result = CellularMemeticAlgorithm(config).run(etc);
    return std::pair{samples, result.best.objectives.makespan};
  };

  const auto [c9, c9_makespan] = trace_of(NeighborhoodKind::kC9);
  const auto [pan, pan_makespan] = trace_of(NeighborhoodKind::kPanmictic);

  TablePrinter table({"progress", "C9 distance", "C9 entropy", "Pan distance",
                      "Pan entropy"});
  const std::size_t rows = 8;
  const std::size_t n = std::min(c9.size(), pan.size());
  if (n == 0) {
    std::cout << "budget too small to complete one iteration\n";
    return 0;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t i = (n - 1) * r / (rows - 1);
    table.add_row({std::to_string(100 * (i + 1) / n) + "%",
                   TablePrinter::num(c9[i].distance, 4),
                   TablePrinter::num(c9[i].entropy, 4),
                   TablePrinter::num(pan[i].distance, 4),
                   TablePrinter::num(pan[i].entropy, 4)});
  }
  table.print(std::cout);

  std::cout << "\nfinal makespan: C9 " << TablePrinter::num(c9_makespan, 0)
            << ", panmictic " << TablePrinter::num(pan_makespan, 0) << "\n"
            << "expected: the mesh holds measurably more diversity late in "
               "the run while matching or beating the panmictic makespan\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Diversity: structured vs panmictic populations");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
