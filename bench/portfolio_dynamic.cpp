// Portfolio vs single-algorithm dynamic scheduling.
//
//   $ ./portfolio_dynamic [--minutes 10] [--budget-ms 25] [--seed 7]
//
// Four grid scenarios (consistent / inconsistent ETC, each with and
// without machine churn) are replayed with the same arrival trace under
// every scheduler: the constructive heuristics, the budgeted Struggle GA
// and cMA, and the portfolio in both static-race and UCB mode. For each
// scheduler we accumulate the *batch fitness* of every activation's
// committed schedule (the quantity the portfolio optimizes) next to the
// end-to-end simulation metrics, and we track per-activation scheduling
// latency against the configured budget. `--seeds N` repeats every
// scenario over N seeds and reports mean ± 95% CI (common/stats).
#include <algorithm>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/table.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "portfolio/portfolio.h"
#include "sim/grid_simulator.h"

namespace gridsched {
namespace {

/// Decorator that measures what the simulator alone cannot see: the batch
/// fitness of each committed schedule and the wall latency per activation.
class BatchFitnessProbe final : public BatchScheduler {
 public:
  BatchFitnessProbe(BatchScheduler& inner, FitnessWeights weights)
      : inner_(inner), weights_(weights) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return inner_.name();
  }

  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc) override {
    return schedule_batch(etc, BatchContext::identity(etc));
  }

  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc,
                                        const BatchContext& ctx) override {
    Stopwatch watch;
    Schedule plan = inner_.schedule_batch(etc, ctx);
    const double latency = watch.elapsed_ms();
    max_latency_ms = std::max(max_latency_ms, latency);
    total_latency_ms += latency;
    cumulative_fitness +=
        make_individual(plan, etc, weights_).fitness;
    ++activations;
    return plan;
  }

  double cumulative_fitness = 0.0;
  double max_latency_ms = 0.0;
  double total_latency_ms = 0.0;
  int activations = 0;

 private:
  BatchScheduler& inner_;
  FitnessWeights weights_;
};

struct Scenario {
  std::string name;
  double noise = 0.0;
  bool churn = false;
};

struct Outcome {
  std::string scheduler;
  RunningStats jobs;
  RunningStats makespan;
  RunningStats flowtime;
  RunningStats cumulative_fitness;
  RunningStats mean_latency_ms;
  RunningStats max_latency_ms;
};

}  // namespace
}  // namespace gridsched

int main(int argc, char** argv) {
  using namespace gridsched;

  CliParser cli("Portfolio vs single-algorithm dynamic grid scheduling");
  cli.flag("minutes", "10", "simulated minutes of job arrivals");
  cli.flag("budget-ms", "25", "wall-clock budget per activation");
  cli.flag("rate", "0.5", "job arrivals per simulated second");
  cli.flag("period", "60", "scheduler activation period (simulated s)");
  cli.flag("seed", "7", "simulation seed");
  cli.flag("seeds", "1", "repetitions per scenario (mean ± 95% CI)");
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));

  const double budget_ms = cli.get_double("budget-ms");
  SimConfig base;
  base.horizon = cli.get_double("minutes") * 60.0;
  base.arrival_rate = cli.get_double("rate");
  base.scheduler_period = cli.get_double("period");
  base.num_machines = 12;
  base.mips_min = 500.0;
  base.mips_max = 2'000.0;
  base.seed = static_cast<std::uint64_t>(cli.get_double("seed"));

  const std::vector<Scenario> scenarios = {
      {"consistent", 0.0, false},
      {"inconsistent", 0.6, false},
      {"consistent + churn", 0.0, true},
      {"inconsistent + churn", 0.6, true},
  };

  std::cout << "=== portfolio vs single-algorithm dynamic scheduling ===\n"
            << "budget " << budget_ms << " ms/activation, "
            << base.num_machines << " machines, " << base.arrival_rate
            << " jobs/s for " << base.horizon << " s, period "
            << base.scheduler_period << " s, seed " << base.seed << "\n\n";

  int scenarios_where_portfolio_wins = 0;
  for (const Scenario& scenario : scenarios) {
    SimConfig sim_config = base;
    sim_config.consistency_noise = scenario.noise;
    if (scenario.churn) {
      sim_config.machine_mtbf = 900.0;
      sim_config.machine_mttr = 120.0;
    }

    TablePrinter table({"scheduler", "jobs", "makespan (s)", "flowtime (s)",
                        "cum batch fitness", "mean lat (ms)", "max lat (ms)"});
    std::vector<Outcome> outcomes;
    // Per-portfolio member-win scoreboard (who supplied the committed
    // schedule, summed over activations and seed repetitions) — the
    // docs/portfolio.md "which member earns its seat" evidence.
    std::vector<std::pair<std::string, std::map<std::string, int>>>
        scoreboards;

    // Schedulers are stateful (warm caches, UCB credit), so every seed
    // repetition gets a freshly built one via its factory.
    using SchedulerFactory = std::function<std::unique_ptr<BatchScheduler>(
        std::uint64_t seed)>;
    auto simulate = [&](const SchedulerFactory& make_scheduler) {
      Outcome outcome;
      std::map<std::string, int> member_wins;
      bool is_portfolio = false;
      for (int rep = 0; rep < seeds; ++rep) {
        SimConfig run_sim = sim_config;
        run_sim.seed = sim_config.seed + static_cast<std::uint64_t>(rep);
        const std::unique_ptr<BatchScheduler> scheduler =
            make_scheduler(run_sim.seed);
        BatchFitnessProbe probe(*scheduler, FitnessWeights{});
        GridSimulator sim(run_sim);  // same seed -> same arrival trace
        const SimMetrics metrics = sim.run(probe);
        outcome.scheduler = std::string(scheduler->name());
        outcome.jobs.add(metrics.jobs_completed);
        outcome.makespan.add(metrics.makespan);
        outcome.flowtime.add(metrics.mean_flowtime);
        outcome.cumulative_fitness.add(probe.cumulative_fitness);
        outcome.mean_latency_ms.add(
            probe.activations > 0
                ? probe.total_latency_ms / probe.activations
                : 0.0);
        outcome.max_latency_ms.add(probe.max_latency_ms);
        if (const auto* portfolio = dynamic_cast<const PortfolioBatchScheduler*>(
                scheduler.get())) {
          is_portfolio = true;
          for (const MemberStats& stats : portfolio->member_stats()) {
            member_wins[stats.name] += stats.wins;
          }
        }
      }
      if (is_portfolio) {
        scoreboards.emplace_back(outcome.scheduler, std::move(member_wins));
      }
      table.add_row({outcome.scheduler,
                     TablePrinter::num(outcome.jobs.mean(), 0),
                     TablePrinter::mean_ci(outcome.makespan, 1),
                     TablePrinter::mean_ci(outcome.flowtime, 1),
                     TablePrinter::mean_ci(outcome.cumulative_fitness, 0),
                     TablePrinter::num(outcome.mean_latency_ms.mean(), 1),
                     TablePrinter::num(outcome.max_latency_ms.max(), 1)});
      outcomes.push_back(std::move(outcome));
    };

    // --- Single-algorithm baselines. ---
    simulate([](std::uint64_t) {
      return std::make_unique<HeuristicBatchScheduler>(HeuristicKind::kMct);
    });
    simulate([](std::uint64_t) {
      return std::make_unique<HeuristicBatchScheduler>(HeuristicKind::kMinMin);
    });
    simulate([&](std::uint64_t) {
      return std::make_unique<StruggleGaBatchScheduler>(StruggleGaConfig{},
                                                        budget_ms);
    });
    simulate([&](std::uint64_t) {
      return std::make_unique<CmaBatchScheduler>(CmaConfig{}, budget_ms);
    });
    const std::size_t num_single = outcomes.size();

    // --- Portfolios. The static race fields every member concurrently;
    // UCB concentrates the budget on one expensive member per activation
    // (the right mode when cores are scarce) while MCT/Min-Min always
    // race as the safety net. ---
    simulate([&](std::uint64_t seed) {
      PortfolioConfig config;
      config.budget_ms = budget_ms;
      config.seed = seed;
      return std::make_unique<PortfolioBatchScheduler>(
          config, PortfolioBatchScheduler::default_members(config));
    });
    simulate([&](std::uint64_t seed) {
      PortfolioConfig config;
      config.budget_ms = budget_ms;
      config.seed = seed;
      config.policy = PolicyKind::kUcb;
      config.ucb = UcbConfig{.exploration = 0.3, .max_active = 1};
      return std::make_unique<PortfolioBatchScheduler>(
          config, PortfolioBatchScheduler::default_members(config));
    });

    std::cout << "--- " << scenario.name << " ---\n";
    table.print(std::cout);
    for (const auto& [portfolio_name, wins] : scoreboards) {
      std::cout << "member wins (" << portfolio_name << "):";
      for (const auto& [member, count] : wins) {
        if (count > 0) std::cout << "  " << member << " " << count;
      }
      std::cout << "\n";
    }

    double best_single = std::numeric_limits<double>::infinity();
    std::string best_single_name;
    for (std::size_t i = 0; i < num_single; ++i) {
      if (outcomes[i].cumulative_fitness.mean() < best_single) {
        best_single = outcomes[i].cumulative_fitness.mean();
        best_single_name = outcomes[i].scheduler;
      }
    }
    const Outcome* best_portfolio = &outcomes[num_single];
    for (std::size_t i = num_single; i < outcomes.size(); ++i) {
      if (outcomes[i].cumulative_fitness.mean() <
          best_portfolio->cumulative_fitness.mean()) {
        best_portfolio = &outcomes[i];
      }
    }
    const bool wins = best_portfolio->cumulative_fitness.mean() <=
                      best_single * (1.0 + 1e-9);
    if (wins) ++scenarios_where_portfolio_wins;
    std::cout << "verdict: " << best_portfolio->scheduler
              << (wins ? " matches or beats " : " trails ")
              << "the best single member (" << best_single_name << ") by "
              << TablePrinter::pct(
                     (best_single -
                      best_portfolio->cumulative_fitness.mean()) /
                         best_single * 100.0,
                     2)
              << "% cumulative batch fitness; max portfolio latency "
              << TablePrinter::num(best_portfolio->max_latency_ms.max(), 1)
              << " ms against a " << budget_ms << " ms budget\n\n";
  }

  std::cout << "portfolio matched or beat the best single member in "
            << scenarios_where_portfolio_wins << "/" << scenarios.size()
            << " scenarios\n";
  return 0;
}
