// Reproduces Fig. 2 of the paper: makespan reduction over execution time
// for the three local search methods (LM, SLM, LMCTS) inside the cMA, on a
// consistent hi-hi instance. Expected shape: all three reduce makespan
// substantially; LMCTS ends lowest.
#include "bench_common.h"

#include <cmath>

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Fig. 2: makespan vs time per local search method", args);
  const EtcMatrix etc = tuning_instance(args);

  std::vector<CmaVariant> variants;
  for (LocalSearchKind kind :
       {LocalSearchKind::kSteepestLocalMove, LocalSearchKind::kLocalMove,
        LocalSearchKind::kLmcts}) {
    variants.push_back(
        {std::string(local_search_name(kind)),
         [kind](CmaConfig& config) { config.local_search.kind = kind; }});
  }
  const std::vector<NamedSeries> series = sweep_variants(args, etc, variants);
  print_series_table(std::cout, series, 0.0, args.time_ms, 10);
  if (!args.csv_dir.empty()) {
    write_series_csv(args.csv_dir + "/fig2_local_search.csv", series, 0.0,
                     args.time_ms, 50);
  }

  const double lm_final = series[1].points.back().best_makespan;
  const double lmcts_final = series[2].points.back().best_makespan;
  std::cout << "\nfinal mean makespan: LMCTS "
            << TablePrinter::num(lmcts_final, 0) << " vs LM "
            << TablePrinter::num(lm_final, 0)
            << (lmcts_final <= lm_final
                    ? "  -> LMCTS best, matching Fig. 2"
                    : "  -> UNEXPECTED: paper has LMCTS best")
            << "\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Fig. 2: makespan reduction per local search method");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
