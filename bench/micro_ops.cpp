// google-benchmark micro suite for the hot paths of the library: the
// incremental evaluator (what local search spends its time in), the
// evolutionary operators, the constructive heuristics and instance
// generation. These bound the evaluations-per-second the cMA can sustain.
//
// Run with `--json <path>` to additionally write a BENCH_micro_ops.json
// verdict report (obs::BenchReport schema) with one `<name>_ns` metric per
// benchmark plus an `offspring_speedup` gauge (full-reset pipeline time
// over delta pipeline time). bench_diff treats `_ns` metrics as
// time-class: informational by default, gated with --gate-time.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cma/crossover.h"
#include "cma/local_search.h"
#include "cma/mutation.h"
#include "core/evaluator.h"
#include "core/individual.h"
#include "etc/instance.h"
#include "heuristics/constructive.h"
#include "obs/bench_report.h"

namespace gridsched {
namespace {

EtcMatrix bench_instance(int jobs = 512, int machines = 16) {
  InstanceSpec spec;
  spec.num_jobs = jobs;
  spec.num_machines = machines;
  return generate_instance(spec);
}

/// A mid-run cMA population: every resident is the same ancestor plus a
/// few random gene reassignments, so offspring sit a bounded gene-diff
/// from whatever the evaluator last held — the regime the delta
/// (reset_to) offspring path is built for.
std::vector<Schedule> converged_population(const EtcMatrix& etc, Rng& rng,
                                           int size = 16,
                                           int perturbations = 24) {
  const Schedule base =
      Schedule::random(etc.num_jobs(), etc.num_machines(), rng);
  std::vector<Schedule> population(static_cast<std::size_t>(size), base);
  for (auto& resident : population) {
    for (int p = 0; p < perturbations; ++p) {
      const JobId j = rng.uniform_int(0, etc.num_jobs() - 1);
      resident[j] = rng.uniform_int(0, etc.num_machines() - 1);
    }
  }
  return population;
}

void BM_EvaluatorReset(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(1);
  const Schedule s = Schedule::random(etc.num_jobs(), etc.num_machines(), rng);
  ScheduleEvaluator eval(etc);
  for (auto _ : state) {
    eval.reset(s);
    benchmark::DoNotOptimize(eval.makespan());
  }
}
BENCHMARK(BM_EvaluatorReset);

// Machine-count sweep: the point of the top-3 cache is that preview cost
// does NOT grow with the fleet (the seed scanned all m completions per
// preview). 512 jobs throughout; only the machine count varies.
void BM_PreviewMove(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const EtcMatrix etc = bench_instance(512, machines);
  Rng rng(2);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  JobId j = 0;
  for (auto _ : state) {
    const MachineId to =
        static_cast<MachineId>((eval.schedule()[j] + 1) % etc.num_machines());
    benchmark::DoNotOptimize(eval.preview_move(j, to));
    j = (j + 1) % etc.num_jobs();
  }
}
BENCHMARK(BM_PreviewMove)->Arg(16)->Arg(64)->Arg(256);

void BM_PreviewSwap(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const EtcMatrix etc = bench_instance(512, machines);
  Rng rng(3);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  JobId a = 0;
  for (auto _ : state) {
    JobId b = (a + 1) % etc.num_jobs();
    while (eval.schedule()[a] == eval.schedule()[b]) {
      b = (b + 1) % etc.num_jobs();
    }
    benchmark::DoNotOptimize(eval.preview_swap(a, b));
    a = (a + 1) % etc.num_jobs();
  }
}
BENCHMARK(BM_PreviewSwap)->Arg(16)->Arg(64)->Arg(256);

// Gene-diff re-target: evaluator flips between two schedules 32 genes
// apart, the surgery path reset() replaced for offspring evaluation.
void BM_EvaluatorResetTo(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(8);
  const Schedule a = Schedule::random(etc.num_jobs(), etc.num_machines(), rng);
  Schedule b = a;
  for (int p = 0; p < 32; ++p) {
    b[rng.uniform_int(0, etc.num_jobs() - 1)] =
        rng.uniform_int(0, etc.num_machines() - 1);
  }
  ScheduleEvaluator eval(etc);
  eval.reset(a);
  bool to_b = true;
  for (auto _ : state) {
    eval.reset_to(to_b ? b : a);
    benchmark::DoNotOptimize(eval.makespan());
    to_b = !to_b;
  }
}
BENCHMARK(BM_EvaluatorResetTo);

// The offspring evaluation pipeline at 512x16 on a late-run population
// (residents a few gene flips from a common ancestor): crossover +
// evaluator load + objective readback. Local search is deliberately NOT in
// the loop — it has its own benchmark (BM_LocalSearchLmctsStep) and costs
// the same in both variants; this pair isolates the evaluation machinery.
// The FullReset variant is the seed-era shape (allocating crossover, full
// reset(), allocating readback); the Delta variant is what the
// evolutionary loops now run (crossover_into, reset_to gene-diff surgery,
// canonicalizing in-place readback). Same RNG protocol in both, so the
// offspring produced are identical — only the machinery differs.
void BM_OffspringPipelineFullReset(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  const FitnessWeights weights{};
  Rng rng(9);
  const std::vector<Schedule> population =
      converged_population(etc, rng, 16, 8);
  ScheduleEvaluator eval(etc);
  for (auto _ : state) {
    const int a = rng.uniform_int(0, 15);
    const int b = rng.uniform_int(0, 15);
    Schedule child =
        crossover(CrossoverKind::kOnePoint,
                  population[static_cast<std::size_t>(a)],
                  population[static_cast<std::size_t>(b)], rng);
    eval.reset(child);
    Individual offspring = individual_from_evaluator(eval, weights);
    benchmark::DoNotOptimize(offspring.fitness);
  }
}
BENCHMARK(BM_OffspringPipelineFullReset);

void BM_OffspringPipelineDelta(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  const FitnessWeights weights{};
  Rng rng(9);
  const std::vector<Schedule> population =
      converged_population(etc, rng, 16, 8);
  ScheduleEvaluator eval(etc);
  Schedule child;
  Individual offspring;
  for (auto _ : state) {
    const int a = rng.uniform_int(0, 15);
    const int b = rng.uniform_int(0, 15);
    crossover_into(child, CrossoverKind::kOnePoint,
                   population[static_cast<std::size_t>(a)],
                   population[static_cast<std::size_t>(b)], rng);
    eval.reset_to(child);
    assign_from_evaluator(offspring, eval, weights);
    benchmark::DoNotOptimize(offspring.fitness);
  }
}
BENCHMARK(BM_OffspringPipelineDelta);

void BM_ApplyMove(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(4);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  JobId j = 0;
  for (auto _ : state) {
    const MachineId to =
        static_cast<MachineId>((eval.schedule()[j] + 1) % etc.num_machines());
    eval.apply_move(j, to);
    j = (j + 1) % etc.num_jobs();
  }
}
BENCHMARK(BM_ApplyMove);

void BM_LocalSearchLmctsStep(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(5);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  const LocalSearchConfig config{LocalSearchKind::kLmcts, 1};
  const FitnessWeights weights{};
  for (auto _ : state) {
    state.PauseTiming();
    eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
    state.ResumeTiming();
    benchmark::DoNotOptimize(local_search(config, weights, eval, rng));
  }
}
BENCHMARK(BM_LocalSearchLmctsStep);

void BM_OnePointCrossover(benchmark::State& state) {
  Rng rng(6);
  const Schedule a = Schedule::random(512, 16, rng);
  const Schedule b = Schedule::random(512, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crossover(CrossoverKind::kOnePoint, a, b, rng));
  }
}
BENCHMARK(BM_OnePointCrossover);

void BM_RebalanceMutation(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(7);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  for (auto _ : state) {
    mutate(MutationKind::kRebalance, eval, rng);
  }
}
BENCHMARK(BM_RebalanceMutation);

void BM_MinMin(benchmark::State& state) {
  const EtcMatrix etc =
      bench_instance(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_min(etc));
  }
}
BENCHMARK(BM_MinMin)->Arg(128)->Arg(512);

void BM_LjfrSjfr(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ljfr_sjfr(etc));
  }
}
BENCHMARK(BM_LjfrSjfr);

void BM_GenerateInstance(benchmark::State& state) {
  InstanceSpec spec;
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_instance(spec, ++k));
  }
}
BENCHMARK(BM_GenerateInstance);

}  // namespace
}  // namespace gridsched

namespace {

/// Console reporter that additionally captures (name, adjusted real ns per
/// iteration) for every non-aggregate run, for the --json report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<std::pair<std::string, double>> rows;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        rows.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
      }
    }
    ConsoleReporter::ReportRuns(report);
  }
};

/// "BM_PreviewMove/16" -> "BM_PreviewMove_16_ns" (bench_diff metric keys).
std::string metric_key(std::string_view name) {
  std::string key(name);
  for (char& c : key) {
    if (c == '/' || c == ':') c = '_';
  }
  return key + "_ns";
}

bool write_json_report(const std::string& path,
                       const std::vector<std::pair<std::string, double>>& rows) {
  gridsched::obs::BenchReport report;
  report.bench = "micro_ops";
  gridsched::obs::BenchVerdict verdict;
  verdict.name = "hot_paths";
  double full_reset_ns = 0.0;
  double delta_ns = 0.0;
  for (const auto& [name, ns] : rows) {
    verdict.metrics.emplace_back(metric_key(name), ns);
    if (name == "BM_OffspringPipelineFullReset") full_reset_ns = ns;
    if (name == "BM_OffspringPipelineDelta") delta_ns = ns;
  }
  if (full_reset_ns > 0.0 && delta_ns > 0.0) {
    // Evals/sec ratio of the delta offspring pipeline over the seed-shaped
    // full-reset pipeline; higher is better, gated as a throughput metric.
    verdict.metrics.emplace_back("offspring_speedup",
                                 full_reset_ns / delta_ns);
  }
  report.verdicts.push_back(std::move(verdict));
  return report.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --json <path> before google-benchmark parses the rest.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !write_json_report(json_path, reporter.rows)) {
    return 1;
  }
  return 0;
}
