// google-benchmark micro suite for the hot paths of the library: the
// incremental evaluator (what local search spends its time in), the
// evolutionary operators, the constructive heuristics and instance
// generation. These bound the evaluations-per-second the cMA can sustain.
#include <benchmark/benchmark.h>

#include "cma/crossover.h"
#include "cma/local_search.h"
#include "cma/mutation.h"
#include "core/evaluator.h"
#include "etc/instance.h"
#include "heuristics/constructive.h"

namespace gridsched {
namespace {

EtcMatrix bench_instance(int jobs = 512, int machines = 16) {
  InstanceSpec spec;
  spec.num_jobs = jobs;
  spec.num_machines = machines;
  return generate_instance(spec);
}

void BM_EvaluatorReset(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(1);
  const Schedule s = Schedule::random(etc.num_jobs(), etc.num_machines(), rng);
  ScheduleEvaluator eval(etc);
  for (auto _ : state) {
    eval.reset(s);
    benchmark::DoNotOptimize(eval.makespan());
  }
}
BENCHMARK(BM_EvaluatorReset);

void BM_PreviewMove(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(2);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  JobId j = 0;
  for (auto _ : state) {
    const MachineId to =
        static_cast<MachineId>((eval.schedule()[j] + 1) % etc.num_machines());
    benchmark::DoNotOptimize(eval.preview_move(j, to));
    j = (j + 1) % etc.num_jobs();
  }
}
BENCHMARK(BM_PreviewMove);

void BM_PreviewSwap(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(3);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  JobId a = 0;
  for (auto _ : state) {
    JobId b = (a + 1) % etc.num_jobs();
    while (eval.schedule()[a] == eval.schedule()[b]) {
      b = (b + 1) % etc.num_jobs();
    }
    benchmark::DoNotOptimize(eval.preview_swap(a, b));
    a = (a + 1) % etc.num_jobs();
  }
}
BENCHMARK(BM_PreviewSwap);

void BM_ApplyMove(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(4);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  JobId j = 0;
  for (auto _ : state) {
    const MachineId to =
        static_cast<MachineId>((eval.schedule()[j] + 1) % etc.num_machines());
    eval.apply_move(j, to);
    j = (j + 1) % etc.num_jobs();
  }
}
BENCHMARK(BM_ApplyMove);

void BM_LocalSearchLmctsStep(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(5);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  const LocalSearchConfig config{LocalSearchKind::kLmcts, 1};
  const FitnessWeights weights{};
  for (auto _ : state) {
    state.PauseTiming();
    eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
    state.ResumeTiming();
    benchmark::DoNotOptimize(local_search(config, weights, eval, rng));
  }
}
BENCHMARK(BM_LocalSearchLmctsStep);

void BM_OnePointCrossover(benchmark::State& state) {
  Rng rng(6);
  const Schedule a = Schedule::random(512, 16, rng);
  const Schedule b = Schedule::random(512, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crossover(CrossoverKind::kOnePoint, a, b, rng));
  }
}
BENCHMARK(BM_OnePointCrossover);

void BM_RebalanceMutation(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  Rng rng(7);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  for (auto _ : state) {
    mutate(MutationKind::kRebalance, eval, rng);
  }
}
BENCHMARK(BM_RebalanceMutation);

void BM_MinMin(benchmark::State& state) {
  const EtcMatrix etc =
      bench_instance(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_min(etc));
  }
}
BENCHMARK(BM_MinMin)->Arg(128)->Arg(512);

void BM_LjfrSjfr(benchmark::State& state) {
  const EtcMatrix etc = bench_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ljfr_sjfr(etc));
  }
}
BENCHMARK(BM_LjfrSjfr);

void BM_GenerateInstance(benchmark::State& state) {
  InstanceSpec spec;
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_instance(spec, ++k));
  }
}
BENCHMARK(BM_GenerateInstance);

}  // namespace
}  // namespace gridsched

BENCHMARK_MAIN();
