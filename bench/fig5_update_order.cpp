// Reproduces Fig. 5 of the paper: makespan reduction over execution time
// for the recombination sweep orders (FLS, FRS, NRS). Expected shape: the
// three mechanisms perform similarly, FLS slightly best.
#include "bench_common.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Fig. 5: makespan vs time per recombination order", args);
  const EtcMatrix etc = tuning_instance(args);

  std::vector<CmaVariant> variants;
  for (SweepKind kind :
       {SweepKind::kFixedLineSweep, SweepKind::kFixedRandomSweep,
        SweepKind::kNewRandomSweep}) {
    variants.push_back(
        {std::string(sweep_name(kind)),
         [kind](CmaConfig& config) { config.recombination_order = kind; }});
  }
  const std::vector<NamedSeries> series = sweep_variants(args, etc, variants);
  print_series_table(std::cout, series, 0.0, args.time_ms, 10);
  if (!args.csv_dir.empty()) {
    write_series_csv(args.csv_dir + "/fig5_update_order.csv", series, 0.0,
                     args.time_ms, 50);
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i].points.back().best_makespan <
        series[best].points.back().best_makespan) {
      best = i;
    }
  }
  std::cout << "\nbest at budget end: " << series[best].name
            << " (the paper reports all three close, FLS the best "
               "performer)\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Fig. 5: makespan reduction per recombination order");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
