// Shared plumbing for the paper-experiment bench binaries.
//
// Every bench follows the same recipe: parse the shared flags, build the 12
// canonical instances (or a figure's single tuning instance), run each
// configured algorithm `runs` times under an equal wall-clock budget with a
// thread pool, and print the paper's rows next to the measured ones.
#pragma once

#include <cmath>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "benchutil/bench_args.h"
#include "benchutil/experiment.h"
#include "benchutil/series.h"
#include "benchutil/table.h"
#include "bounds/lower_bound.h"
#include "cma/cma.h"
#include "common/cli.h"
#include "common/thread_pool.h"
#include "core/bounds.h"
#include "etc/instance.h"
#include "etc/paper_reference.h"
#include "ga/braun_ga.h"
#include "ga/steady_state_ga.h"
#include "ga/struggle_ga.h"
#include "heuristics/constructive.h"
#include "obs/bench_report.h"

namespace gridsched::bench {

/// Parses the shared flags (plus any bench-specific ones registered by
/// `extra`). Returns nullopt if --help was requested.
inline std::optional<BenchArgs> parse_args(
    int argc, const char* const* argv, const std::string& summary,
    const std::function<void(CliParser&)>& extra = {}) {
  CliParser cli(summary);
  BenchArgs::register_flags(cli);
  if (extra) extra(cli);
  if (!cli.parse(argc, argv)) return std::nullopt;
  return BenchArgs::from_cli(cli);
}

/// The stop condition every bench run shares: the wall-clock budget plus
/// the optional --evals bound (which makes the run machine-independent —
/// the CI gap gate records its baselines that way).
inline StopCondition bench_stop(const BenchArgs& args) {
  StopCondition stop;
  stop.max_time_ms = args.time_ms;
  stop.max_evaluations = args.evals;
  return stop;
}

/// The paper's tuned cMA (Table 1) under the bench's budget and shape.
inline CmaConfig paper_cma_config(const BenchArgs& args, bool record = false) {
  CmaConfig config;
  config.stop = bench_stop(args);
  config.seed = args.seed;
  config.record_progress = record;
  return config;
}

/// LP budget from the shared flags (--lp-max-pivots).
inline bounds::LpOptions lp_options(const BenchArgs& args) {
  bounds::LpOptions options;
  options.enabled = args.lp_max_pivots > 0;
  options.max_pivots = args.lp_max_pivots;
  return options;
}

/// Gap-column cell: "4.35 (LP)" when the LP bound is live, "(cheap)" when
/// the budget knob dropped it back to the closed-form floors.
inline std::string gap_cell(double objective,
                            const bounds::MakespanBoundResult& bound) {
  const double gap = bounds::optimality_gap_pct(objective, bound.value);
  if (!std::isfinite(gap)) return "-";
  return TablePrinter::num(gap, 2) +
         (bound.lp_status == bounds::LpBoundStatus::kOptimal ? " (LP)"
                                                             : " (cheap)");
}

/// Folds the per-verdict oks into the report and writes it when --json was
/// given. Returns the bench's exit code: a bound violation — an algorithm
/// reporting an objective below a proven lower bound — is a correctness
/// bug, not a quality regression, and fails the run outright.
inline int finish_report(obs::BenchReport& report, const BenchArgs& args) {
  for (const auto& verdict : report.verdicts) {
    report.ok = report.ok && verdict.ok;
  }
  if (!args.json.empty()) report.write_file(args.json);
  return report.ok ? 0 : 1;
}

/// Builds the 12 canonical instances at the bench's shape. For non-default
/// shapes the labels keep the class naming so rows stay recognizable.
struct BenchInstance {
  std::string label;
  EtcMatrix etc;
};

inline std::vector<BenchInstance> benchmark_instances(const BenchArgs& args) {
  std::vector<BenchInstance> instances;
  for (InstanceSpec spec : braun_benchmark_suite()) {
    spec.num_jobs = args.jobs;
    spec.num_machines = args.machines;
    instances.push_back({spec.name(), generate_instance(spec)});
  }
  return instances;
}

/// The single instance the tuning figures use (consistent hi-hi, the class
/// whose makespan magnitudes match Fig. 2's axis).
inline EtcMatrix tuning_instance(const BenchArgs& args) {
  InstanceSpec spec;  // defaults: consistent hihi
  spec.num_jobs = args.jobs;
  spec.num_machines = args.machines;
  return generate_instance(spec);
}

/// Standard header block for bench output.
inline void print_header(const std::string& title, const BenchArgs& args) {
  std::cout << "=== " << title << " ===\n"
            << "protocol: " << args.runs << " run(s) x " << args.time_ms
            << " ms, " << args.jobs << " jobs x " << args.machines
            << " machines, seed " << args.seed
            << (args.paper ? "  [paper protocol]" : "") << "\n"
            << "note: instances are fresh samples of the Braun classes; "
               "compare shapes, not absolute values (DESIGN.md #3)\n\n";
}

inline ThreadPool& shared_pool(const BenchArgs& args) {
  static ThreadPool pool(args.threads > 0
                             ? static_cast<std::size_t>(args.threads)
                             : 0);
  return pool;
}

/// Averages the best-so-far makespan trajectories of several runs onto a
/// common `samples`-point grid over [0, t1_ms] — the figures plot the mean
/// behaviour of repeated runs, not a single lucky trajectory.
inline NamedSeries averaged_series(std::string name,
                                   const std::vector<EvolutionResult>& runs,
                                   double t1_ms, int samples) {
  NamedSeries series{std::move(name), {}};
  for (int i = 0; i < samples; ++i) {
    const double t =
        samples > 1 ? t1_ms * static_cast<double>(i) / (samples - 1) : t1_ms;
    double sum = 0.0;
    int counted = 0;
    for (const auto& run : runs) {
      const double v = series_value_at(run.progress, t);
      if (!std::isnan(v)) {
        sum += v;
        ++counted;
      }
    }
    ProgressPoint point;
    point.time_ms = t;
    point.best_makespan = counted > 0 ? sum / counted : 0.0;
    series.points.push_back(point);
  }
  return series;
}

/// One (name, config-tweak) pair of a tuning sweep.
struct CmaVariant {
  std::string name;
  std::function<void(CmaConfig&)> mutate_config;
};

/// Runs every variant `args.runs` times with progress recording — all
/// variants and repetitions flattened over the thread pool — and returns
/// one averaged makespan-vs-time series per variant.
inline std::vector<NamedSeries> sweep_variants(
    const BenchArgs& args, const EtcMatrix& etc,
    const std::vector<CmaVariant>& variants) {
  std::vector<SeededRun> jobs;
  for (const auto& variant : variants) {
    jobs.push_back([&args, &etc, &variant](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args, /*record=*/true);
      config.seed = seed;
      variant.mutate_config(config);
      return CellularMemeticAlgorithm(config).run(etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));
  std::vector<NamedSeries> series;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    series.push_back(
        averaged_series(variants[i].name, results[i].runs, args.time_ms, 10));
  }
  return series;
}

}  // namespace gridsched::bench
