// Deadline SLOs vs offered load under the sharded service.
//
//   $ ./qos_slo [--minutes 4] [--budget-ms 15] [--seeds 3]
//               [--loads 1.0,1.2,1.5] [--json BENCH_qos_slo.json]
//
// A QoS-annotated workload (QosWorkload: 70% of jobs carry a deadline of
// 1.5-4x their reference service time) is replayed on a class-structured
// grid at increasing offered load — the arrival rate scaled to roughly
// 1.0x, 1.2x and 1.5x the grid's service capacity — across shard counts,
// comparing two deployments at every operating point, paired per seed
// (same seed = same arrival trace, machine speeds and churn):
//
//   baseline    least-backlog routing, admission OFF: every job is
//               admitted and routed deadline-blind — the PR 5 service.
//   candidate   deadline-aware routing + admission ON: deadline jobs
//               chase the shard minimizing their completion estimate,
//               already-doomed jobs degrade to best effort, and under
//               overload (mean per-machine backlog above the threshold)
//               doomed jobs are shed at ingress (Schedule::kRejected).
//
// Reported per configuration: the deadline miss rate (late + rejected +
// unfinished, over deadline-carrying jobs — rejections COUNT as misses,
// so admission cannot game the SLO by hiding jobs), p99 tardiness of the
// late completions, best-effort completions, jobs shed, and executed
// cost. Job accounting treats completed + rejected = arrived as lossless:
// a shed job is a recorded decision, not a dropped one.
//
// Verdicts (exit 1 on failure), paired per seed at every shard count:
//   * at every overloaded point (load >= 1.2): the candidate's miss rate
//     is STRICTLY below the baseline's (mean paired delta in percentage
//     points < 0) — deadline-aware routing plus shedding must buy real
//     SLO headroom exactly where it is claimed to;
//   * at every point: candidate best-effort completions stay within 5%
//     of the baseline's — the SLO win must not come from starving or
//     shedding the patient work (best-effort jobs are never rejected).
#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "benchutil/table.h"
#include "common/cli.h"
#include "common/stats.h"
#include "obs/bench_report.h"
#include "qos/qos_workload.h"
#include "service/sharded_driver.h"
#include "workload/workload_source.h"

namespace gridsched {
namespace {

struct RunOutcome {
  double miss_rate = 0.0;       // global deadline miss rate, [0, 1]
  double tardiness_p99 = 0.0;   // of late completions (s)
  bool tardiness_p99_overflow = false;  // p99 clamped at histogram range end
  int deadline_jobs = 0;
  int rejected = 0;             // shed at ingress
  int best_effort_done = 0;     // completed jobs without a deadline
  double total_cost = 0.0;
  int jobs_arrived = 0;
  int jobs_completed = 0;
};

struct ConfigSummary {
  RunningStats miss_rate;
  RunningStats tardiness_p99;
  // True when ANY seed's p99 was clamped at the histogram range end — the
  // tardiness_p99 mean is then a floor, and the table flags it.
  bool tardiness_p99_overflow = false;
  RunningStats rejected;
  RunningStats best_effort_done;
  RunningStats total_cost;
  // Raw per-seed values for the paired verdicts.
  std::vector<double> miss_rates;
  std::vector<double> best_efforts;
};

RunOutcome run_once(const SimConfig& sim_config,
                    const ServiceConfig& service_config) {
  GridSimulator sim(sim_config);
  GridSchedulingService service(service_config);
  const ShardedSimReport report = run_sharded(sim, service);

  RunOutcome outcome;
  outcome.miss_rate = report.global_slo.miss_rate();
  outcome.tardiness_p99 = report.global_slo.tardiness_p99;
  outcome.tardiness_p99_overflow = report.global_slo.tardiness_p99_overflow;
  outcome.deadline_jobs = report.global_slo.deadline_jobs;
  outcome.rejected = report.global.jobs_rejected;
  outcome.total_cost = report.global.total_cost;
  outcome.jobs_arrived = report.global.jobs_arrived;
  outcome.jobs_completed = report.global.jobs_completed;
  const std::vector<TraceJob>& trace = sim.arrival_trace();
  for (const SimJobRecord& record : sim.job_records()) {
    if (trace[static_cast<std::size_t>(record.id)].deadline < 0 &&
        record.finish >= 0) {
      ++outcome.best_effort_done;
    }
  }
  return outcome;
}

void add_outcome(ConfigSummary& summary, const RunOutcome& outcome) {
  summary.miss_rate.add(outcome.miss_rate * 100.0);
  summary.tardiness_p99.add(outcome.tardiness_p99);
  summary.tardiness_p99_overflow |= outcome.tardiness_p99_overflow;
  summary.rejected.add(outcome.rejected);
  summary.best_effort_done.add(outcome.best_effort_done);
  summary.total_cost.add(outcome.total_cost);
  summary.miss_rates.push_back(outcome.miss_rate * 100.0);
  summary.best_efforts.push_back(outcome.best_effort_done);
}

/// Paired per-seed delta in absolute units (percentage points for miss
/// rates — a relative delta would explode when the baseline is near
/// zero).
struct PairedDelta {
  double mean = 0.0;
  double ci = 0.0;

  [[nodiscard]] bool improves() const noexcept { return mean < 0.0; }
};

PairedDelta paired_abs_delta(const std::vector<double>& candidate,
                             const std::vector<double>& baseline) {
  std::vector<double> deltas;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    deltas.push_back(candidate[i] - baseline[i]);
  }
  const Summary summary = summarize(deltas);
  return {summary.mean, ci95_half_width(deltas.size(), summary.stddev)};
}

/// Mean ± CI cell with the overflow marker: a ">" prefix says the p99
/// rank fell among samples clamped at the histogram's range end, so the
/// printed value is a floor, not an estimate.
std::string p99_cell(const RunningStats& stats, bool overflow) {
  const std::string cell = TablePrinter::mean_ci(stats, 1);
  return overflow ? ">" + cell : cell;
}

std::vector<double> parse_loads(const std::string& spec) {
  std::vector<double> loads;
  std::stringstream stream(spec);
  std::string field;
  while (std::getline(stream, field, ',')) {
    if (!field.empty()) loads.push_back(std::stod(field));
  }
  return loads;
}

}  // namespace
}  // namespace gridsched

int main(int argc, char** argv) {
  using namespace gridsched;

  CliParser cli("Deadline SLOs vs offered load: deadline-aware routing + "
                "admission control vs deadline-blind least-backlog");
  cli.flag("minutes", "4", "simulated minutes of job arrivals");
  cli.flag("budget-ms", "15", "total wall-clock budget per activation");
  cli.flag("machines", "24", "grid machines");
  cli.flag("period", "20", "scheduler activation period (simulated s)");
  cli.flag("base-rate", "2.0", "arrivals/s that count as offered load 1.0 "
                               "(roughly the grid's service capacity at "
                               "the default machine count)");
  cli.flag("loads", "1.0,1.2,1.5", "offered-load multipliers to sweep");
  cli.flag("overload-backlog", "30", "admission overload threshold: mean "
                                     "per-machine backlog (s) above which "
                                     "doomed deadline jobs are shed");
  cli.flag("deadline-fraction", "0.7", "fraction of jobs with a deadline");
  cli.flag("cost-rate", "1.0", "machine cost rate (cost units per busy "
                               "second at the fastest machine)");
  cli.flag("seed", "7", "base simulation seed");
  cli.flag("seeds", "3", "repetitions per configuration (mean ± 95% CI)");
  cli.flag("json", "", "write every verdict as machine-readable JSON to "
                       "this path (CI uploads it as the BENCH_qos_slo.json "
                       "perf artifact)");
  if (!cli.parse(argc, argv)) return 0;

  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const std::vector<double> loads = parse_loads(cli.get("loads"));
  const std::vector<int> shard_counts = {2, 4};
  obs::BenchReport bench_report;
  bench_report.bench = "qos_slo";

  SimConfig base;
  base.horizon = cli.get_double("minutes") * 60.0;
  base.scheduler_period = cli.get_double("period");
  base.num_machines = static_cast<int>(cli.get_int("machines"));
  base.mips_min = 500.0;
  base.mips_max = 2'000.0;
  // Two machine types under four shards make the shards class-pure (the
  // hard regime: a deadline job's matched machines all live elsewhere),
  // which is exactly where deadline-aware routing's class-corrected
  // completion estimate has something to know that least-backlog does not.
  base.num_job_classes = 2;
  base.class_speedup = 3.0;
  base.machine_cost_rate = cli.get_double("cost-rate");
  base.seed = static_cast<std::uint64_t>(cli.get_double("seed"));

  std::cout << "=== deadline SLOs vs offered load ===\n"
            << base.num_machines << " machines, period "
            << base.scheduler_period << " s, horizon " << base.horizon
            << " s, deadline fraction " << cli.get("deadline-fraction")
            << ", " << seeds << " seed(s) from " << base.seed << "\n\n";

  bool acceptance_ok = true;
  TablePrinter table({"load", "shards", "policy", "miss %", "p99 tard (s)",
                      "shed", "best-effort", "cost"});
  // (load index, shards, candidate?) -> summary
  std::map<std::tuple<std::size_t, int, bool>, ConfigSummary> summaries;

  for (std::size_t li = 0; li < loads.size(); ++li) {
    const double load = loads[li];
    for (const int num_shards : shard_counts) {
      for (const bool candidate : {false, true}) {
        ConfigSummary summary;
        for (int rep = 0; rep < seeds; ++rep) {
          SimConfig sim_config = base;
          sim_config.seed = base.seed + static_cast<std::uint64_t>(rep);
          sim_config.arrival_rate = cli.get_double("base-rate") * load;
          QosWorkloadConfig qos;
          qos.deadline_fraction = cli.get_double("deadline-fraction");
          sim_config.workload = std::make_shared<QosWorkload>(
              std::make_shared<PoissonWorkload>(
                  sim_config.arrival_rate,
                  LogNormalSize{sim_config.workload_log_mean,
                                sim_config.workload_log_sigma}),
              qos);
          ServiceConfig service_config;
          service_config.num_shards = num_shards;
          service_config.total_budget_ms = cli.get_double("budget-ms");
          service_config.seed = sim_config.seed;
          service_config.routing = candidate ? RoutingKind::kDeadlineAware
                                             : RoutingKind::kLeastBacklog;
          service_config.admission.enabled = candidate;
          service_config.admission.overload_backlog =
              cli.get_double("overload-backlog");
          const RunOutcome outcome = run_once(sim_config, service_config);
          // Lossless accounting: every arrived job either completed or
          // was shed as an explicit, recorded admission decision.
          if (outcome.jobs_completed + outcome.rejected !=
              outcome.jobs_arrived) {
            std::cout << "DROP: load " << load << " " << num_shards
                      << " shards " << (candidate ? "candidate" : "baseline")
                      << " seed " << rep << " completed "
                      << outcome.jobs_completed << " + " << outcome.rejected
                      << " shed != " << outcome.jobs_arrived << " arrived\n";
            acceptance_ok = false;
          }
          add_outcome(summary, outcome);
        }
        table.add_row({TablePrinter::num(load, 1),
                       std::to_string(num_shards),
                       candidate ? "deadline-aware+admission"
                                 : "least-backlog",
                       TablePrinter::mean_ci(summary.miss_rate, 1),
                       p99_cell(summary.tardiness_p99,
                                summary.tardiness_p99_overflow),
                       TablePrinter::num(summary.rejected.mean(), 0),
                       TablePrinter::num(summary.best_effort_done.mean(), 0),
                       TablePrinter::num(summary.total_cost.mean(), 0)});
        summaries[{li, num_shards, candidate}] = std::move(summary);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n";

  // --- Paired verdicts per operating point. ---
  for (std::size_t li = 0; li < loads.size(); ++li) {
    const double load = loads[li];
    for (const int num_shards : shard_counts) {
      const ConfigSummary& baseline = summaries[{li, num_shards, false}];
      const ConfigSummary& cand = summaries[{li, num_shards, true}];
      const PairedDelta miss =
          paired_abs_delta(cand.miss_rates, baseline.miss_rates);
      const PairedDelta effort =
          paired_abs_delta(cand.best_efforts, baseline.best_efforts);
      const double effort_base = baseline.best_effort_done.mean();
      // Within 5% of the baseline's best-effort completions (absolute
      // paired mean; a positive delta — MORE best-effort work done — is
      // always fine).
      const bool effort_ok =
          effort.mean >= -0.05 * std::max(effort_base, 1.0);
      const bool overloaded = load >= 1.2;
      const bool miss_ok = !overloaded || miss.improves();
      const bool ok = miss_ok && effort_ok;
      std::cout << "verdict: load " << TablePrinter::num(load, 1) << ", "
                << num_shards << " shards (paired over " << seeds
                << " seed(s)): miss-rate delta "
                << TablePrinter::num(miss.mean, 2) << " pp ± "
                << TablePrinter::num(miss.ci, 2)
                << (overloaded ? " (must be < 0)" : " (informational)")
                << ", best-effort delta " << TablePrinter::num(effort.mean, 1)
                << " jobs (floor -5%) -> " << (ok ? "OK" : "REGRESSION")
                << "\n";
      if (!ok) acceptance_ok = false;
      bench_report.verdicts.push_back(obs::BenchVerdict{
          .name = "load-" + TablePrinter::num(load, 1) + "/shards-" +
                  std::to_string(num_shards),
          .ok = ok,
          .metrics = {{"miss_pp", miss.mean},
                      {"miss_ci", miss.ci},
                      {"candidate_miss_pct", cand.miss_rate.mean()},
                      {"baseline_miss_pct", baseline.miss_rate.mean()},
                      {"best_effort_delta", effort.mean},
                      {"shed_per_run", cand.rejected.mean()}},
          .histograms = {}});
    }
  }

  if (!cli.get("json").empty()) {
    bench_report.ok = acceptance_ok;
    bench_report.write_file(cli.get("json"));
  }

  std::cout << (acceptance_ok
                    ? "\ndeadline-aware routing + admission holds the QoS "
                      "bar at overload\n"
                    : "\nQoS REGRESSION: deadline-aware routing + admission "
                      "failed the SLO bar\n");
  return acceptance_ok ? 0 : 1;
}
