// Reproduces Table 5 of the paper: flowtime of the Struggle GA vs the cMA.
#include "bench_common.h"

#include "common/stats.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Table 5: flowtime, Struggle GA vs cMA", args);
  const auto instances = benchmark_instances(args);

  std::vector<SeededRun> jobs;
  for (const auto& instance : instances) {
    const EtcMatrix* etc = &instance.etc;
    jobs.push_back([etc, &args](std::uint64_t seed) {
      StruggleGaConfig config;
      config.stop = StopCondition{.max_time_ms = args.time_ms};
      config.seed = seed;
      return StruggleGa(config).run(*etc);
    });
    jobs.push_back([etc, &args](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      return CellularMemeticAlgorithm(config).run(*etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  TablePrinter table({"Instance", "Struggle (meas)", "cMA (meas)",
                      "d% (meas)", "Struggle (paper)", "cMA (paper)",
                      "d% (paper)"});
  int cma_wins = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::string& label = instances[i].label;
    // "Results for flowtime parameter": best flowtime across runs, for
    // both algorithms symmetrically.
    const double struggle_flow = results[2 * i].flowtime.min;
    const double cma_flow = results[2 * i + 1].flowtime.min;
    cma_wins += (cma_flow < struggle_flow) ? 1 : 0;

    const auto paper = paper_reference(label);
    table.add_row(
        {label, TablePrinter::num(struggle_flow), TablePrinter::num(cma_flow),
         TablePrinter::pct(percent_delta(struggle_flow, cma_flow)),
         paper ? TablePrinter::num(paper->struggle_ga_flowtime) : "-",
         paper ? TablePrinter::num(paper->cma_flowtime) : "-",
         paper ? TablePrinter::pct(percent_delta(paper->struggle_ga_flowtime,
                                                 paper->cma_flowtime))
               : "-"});
  }
  table.print(std::cout);
  std::cout << "\ncMA beats Struggle GA on flowtime on " << cma_wins
            << "/12 instances (the paper reports 12/12)\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Table 5: flowtime, Struggle GA vs cMA");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
