// Reproduces Table 5 of the paper: flowtime of the Struggle GA vs the cMA.
#include "bench_common.h"

#include "common/stats.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Table 5: flowtime, Struggle GA vs cMA", args);
  const auto instances = benchmark_instances(args);

  std::vector<SeededRun> jobs;
  for (const auto& instance : instances) {
    const EtcMatrix* etc = &instance.etc;
    jobs.push_back([etc, &args](std::uint64_t seed) {
      StruggleGaConfig config;
      config.stop = bench_stop(args);
      config.seed = seed;
      return StruggleGa(config).run(*etc);
    });
    jobs.push_back([etc, &args](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      return CellularMemeticAlgorithm(config).run(*etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  std::vector<std::string> headers = {"Instance",         "Struggle (meas)",
                                      "cMA (meas)",       "d% (meas)",
                                      "Struggle (paper)", "cMA (paper)",
                                      "d% (paper)"};
  if (args.gap) {
    headers.insert(headers.begin() + 4, {"flow LB", "cMA gap%"});
  }
  TablePrinter table(headers);

  obs::BenchReport report;
  report.bench = "table5_flowtime_vs_struggle";
  int cma_wins = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::string& label = instances[i].label;
    // "Results for flowtime parameter": best flowtime across runs, for
    // both algorithms symmetrically.
    const double struggle_flow = results[2 * i].flowtime.min;
    const double cma_flow = results[2 * i + 1].flowtime.min;
    cma_wins += (cma_flow < struggle_flow) ? 1 : 0;

    const auto paper = paper_reference(label);
    std::vector<std::string> row = {
        label,
        TablePrinter::num(struggle_flow),
        TablePrinter::num(cma_flow),
        TablePrinter::pct(percent_delta(struggle_flow, cma_flow)),
        paper ? TablePrinter::num(paper->struggle_ga_flowtime) : "-",
        paper ? TablePrinter::num(paper->cma_flowtime) : "-",
        paper ? TablePrinter::pct(percent_delta(paper->struggle_ga_flowtime,
                                                paper->cma_flowtime))
              : "-"};
    if (args.gap) {
      const double flow_lb = flowtime_lower_bound(instances[i].etc);
      const double gap = bounds::optimality_gap_pct(cma_flow, flow_lb);
      row.insert(row.begin() + 4,
                 {TablePrinter::num(flow_lb),
                  std::isfinite(gap) ? TablePrinter::num(gap, 2) : "-"});

      obs::BenchVerdict verdict;
      verdict.name = label;
      verdict.metrics.emplace_back("struggle_flowtime", struggle_flow);
      verdict.metrics.emplace_back("cma_flowtime", cma_flow);
      obs::add_gap_metric(verdict, "cma_flowtime", cma_flow, flow_lb);
      const double floor = flow_lb * (1.0 - 1e-9);
      verdict.ok = struggle_flow >= floor && cma_flow >= floor;
      report.verdicts.push_back(std::move(verdict));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\ncMA beats Struggle GA on flowtime on " << cma_wins
            << "/12 instances (the paper reports 12/12)\n";
  return finish_report(report, args);
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Table 5: flowtime, Struggle GA vs cMA");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
