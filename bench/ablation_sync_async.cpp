// Ablation: the cell-updating mode the paper chose without measurement.
// Section 3.2: "we have considered the asynchronous updating since it is
// less computationally expensive and usually shows a good performance in a
// very short time". This bench quantifies that choice: asynchronous vs
// synchronous (sequential) vs synchronous (parallel across cells), at the
// same wall-clock budget.
#include "bench_common.h"

#include "cma/sync_cma.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Ablation: asynchronous vs synchronous cell updating", args);
  const EtcMatrix etc = tuning_instance(args);

  struct Mode {
    std::string name;
    std::function<EvolutionResult(std::uint64_t)> runner;
  };
  const int hw_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  std::vector<Mode> modes;
  modes.push_back({"asynchronous (paper)", [&](std::uint64_t seed) {
                     CmaConfig config = paper_cma_config(args);
                     config.seed = seed;
                     return CellularMemeticAlgorithm(config).run(etc);
                   }});
  modes.push_back({"synchronous, 1 thread", [&](std::uint64_t seed) {
                     CmaConfig config = paper_cma_config(args);
                     config.seed = seed;
                     return SynchronousCellularMa(config, 0).run(etc);
                   }});
  modes.push_back({"synchronous, " + std::to_string(hw_threads) + " threads",
                   [&](std::uint64_t seed) {
                     CmaConfig config = paper_cma_config(args);
                     config.seed = seed;
                     return SynchronousCellularMa(config, hw_threads).run(etc);
                   }});

  // The parallel synchronous mode needs the machine to itself, so modes
  // run one after another (runs of a mode still parallelize when the mode
  // itself is single-threaded; keep it simple and sequential here).
  TablePrinter table({"mode", "makespan (mean)", "makespan (best)",
                      "evals/run (mean)", "iterations/run (mean)"});
  for (const auto& mode : modes) {
    std::vector<EvolutionResult> runs;
    for (int r = 0; r < args.runs; ++r) {
      runs.push_back(mode.runner(args.seed + 1 + static_cast<std::uint64_t>(r)));
    }
    const auto agg = aggregate_runs(std::move(runs));
    double evals = 0.0;
    double iters = 0.0;
    for (const auto& run : agg.runs) {
      evals += static_cast<double>(run.evaluations);
      iters += static_cast<double>(run.iterations);
    }
    evals /= static_cast<double>(agg.runs.size());
    iters /= static_cast<double>(agg.runs.size());
    table.add_row({mode.name, TablePrinter::num(agg.makespan.mean),
                   TablePrinter::num(agg.makespan.min),
                   TablePrinter::num(evals, 0), TablePrinter::num(iters, 0)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: the parallel synchronous engine sustains the "
               "most evaluations, but asynchronous updating converges "
               "faster per evaluation (the paper's rationale); note the "
               "synchronous engine is bitwise reproducible for any thread "
               "count\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Ablation: asynchronous vs synchronous cell updating");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
