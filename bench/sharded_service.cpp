// Sharded service vs single-portfolio dynamic scheduling.
//
//   $ ./sharded_service [--minutes 6] [--budget-ms 25] [--seeds 3]
//                       [--routing class-backlog] [--pool-threads 4]
//                       [--steal on] [--json BENCH_sharded_service.json]
//
// Three grid scenarios — consistent, class-structured inconsistent, and a
// class-mix workload on a class-structured grid whose 2-class cycle does
// NOT divide the 4-shard partition evenly (so shards are class-pure: the
// regime class-aware routing exists for) — are replayed under the sharded
// scheduling service at 1/2/4/8 shards crossed with every routing policy,
// all at EQUAL TOTAL BUDGET: the 1-shard baseline gives its whole budget
// to one portfolio; N shards split the same budget over the shards with
// work. For every configuration we report end-to-end makespan, mean
// flowtime, the macro-averaged per-class flowtime (the QoS view), CPU,
// the worst per-activation wall-clock, the worst single-shard budget
// overshoot and rebalancing migrations. `--seeds N` repeats every
// configuration over N seeds and reports mean ± 95% CI (common/stats).
//
// Verdicts (exit 1 on failure):
//   * every scenario: 4 shards x least-backlog is non-inferior to the
//     single queue at equal total budget (paired per seed);
//   * class-mix: class-backlog routing is non-inferior to least-backlog
//     on makespan AND improves the mean per-class flowtime;
//   * drain tail (class-structured scenarios): with cross-shard work
//     stealing ON, the 4-shard makespan premium vs the single queue must
//     tighten from the documented 5% residue band to <= 2% — the paired
//     steal-on vs steal-off comparison runs regardless of `--steal`, so
//     the residue reclaim is enforced at defaults;
//   * overlap: with >= 4 pool threads, CONCURRENT activation of 4 shards
//     completes an activation in measurably less wall-clock than
//     sequential activation at equal total budget, with no job lost.
//
// `--steal on` runs every multi-shard configuration with drain-tail
// stealing (the deployment default the CI smoke exercises); `--json PATH`
// additionally writes every verdict as machine-readable JSON — the
// BENCH_sharded_service.json artifact CI uploads and bench_diff compares
// against bench/baselines/ to build a perf trajectory across commits.
// `--trace PATH` runs one extra traced configuration and writes its
// Chrome trace-event JSON there (open in chrome://tracing / Perfetto);
// the tracing-off-overhead verdict runs regardless, holding the
// disabled-path cost to within noise.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "benchutil/table.h"
#include "bounds/lower_bound.h"
#include "common/cli.h"
#include "common/stats.h"
#include "core/individual.h"
#include "etc/instance.h"
#include "obs/bench_report.h"
#include "obs/trace_recorder.h"
#include "portfolio/portfolio.h"
#include "service/sharded_driver.h"
#include "workload/workload_source.h"

namespace gridsched {
namespace {

struct Scenario {
  std::string name;
  double noise = 0.0;
  int job_classes = 0;  // class-structured inconsistency (machine types)
  /// Non-empty: wrap the arrival stream in ClassMixWorkload with these
  /// per-class rate weights (job_classes must equal the weight count).
  std::vector<double> class_weights;
  /// The routing the scenario's vs-single-queue verdict fields — the
  /// policy a deployment would actually pick there. Class-structured
  /// scenarios field class-backlog: least-backlog is blind to per-class
  /// queues, and its 2-5% drain-tail makespan residue on those grids is
  /// precisely what class-aware routing removes (ROADMAP item).
  RoutingKind candidate = RoutingKind::kLeastBacklog;
  /// Makespan parity margin (%) of the vs-single-queue verdict. The
  /// class-structured scenarios keep a small residual straggler premium
  /// even under class-aware routing: once arrivals stop, the drain tail
  /// splits a dying queue over machine partitions, and the last shard's
  /// stragglers cannot borrow a neighbor's idle machines. That residue
  /// is bounded at the documented 2-5% band (see docs/service.md) — the
  /// verdict caps the TOTAL premium there instead of letting it hide in
  /// seed-CI width; cross-shard drain-tail stealing is the ROADMAP
  /// follow-on that would reclaim it.
  double makespan_margin = 2.0;
};

struct RunOutcome {
  double makespan = 0.0;
  double flowtime = 0.0;       // mean — feeds the paired verdicts
  double flowtime_p99 = 0.0;   // tail — what the tables display
  /// True when the p99 rank fell among clamped >= range-end samples:
  /// flowtime_p99 is then a floor and the table prefixes the cell ">".
  bool flowtime_p99_overflow = false;
  /// The run's whole flowtime distribution — shipped in the JSON verdicts
  /// so bench_diff can compare tails, not just the p99 scalar.
  LatencyHistogram flowtime_hist;
  double class_flowtime = std::numeric_limits<double>::quiet_NaN();
  double utilization = 0.0;
  double cpu_ms = 0.0;
  double mean_act_wall_ms = 0.0;  // mean whole-activation wall (>= 2 shards)
  double max_act_wall_ms = 0.0;   // worst whole-activation wall
  double max_overshoot_ms = 0.0;  // worst single shard race - its budget
  int migrations = 0;
  int steals = 0;  // drain-tail cross-shard job moves
  int jobs_arrived = 0;
  int jobs_completed = 0;
};

struct ConfigSummary {
  RunningStats makespan;
  RunningStats flowtime;
  RunningStats flowtime_p99;
  bool flowtime_p99_overflow = false;  // any seed's p99 overflowed
  LatencyHistogram flowtime_hist;      // merged over seeds
  RunningStats class_flowtime;
  RunningStats utilization;
  RunningStats cpu_ms;
  RunningStats max_act_wall_ms;
  RunningStats max_overshoot_ms;
  RunningStats migrations;
  RunningStats steals;
  // Raw per-seed values for paired comparisons (seed i of every
  // configuration replays the same arrival trace).
  std::vector<double> makespans;
  std::vector<double> flowtimes;
  std::vector<double> class_flowtimes;
};

/// Paired non-inferiority over seeds: "no worse" means the mean per-seed
/// delta is within the parity margin, or its 95% CI still admits zero
/// (the premium is not statistically distinguishable from none). The 2%
/// margin is the usual parity treatment for makespan-class metrics:
/// makespan is a max statistic, and the racing members are wall-clock
/// budgeted, so the truncation point — and with it the committed
/// schedule — jitters a little run to run even at a fixed seed.
struct PairedDelta {
  double mean = 0.0;
  double ci = 0.0;

  [[nodiscard]] bool no_worse(double margin = 2.0) const noexcept {
    return mean <= margin || mean - ci <= 0.0;
  }
  /// "Improves": the paired point estimate is strictly a gain. No
  /// CI-width loophole here — a verdict that must show improvement
  /// should not pass on a measured regression just because the seeds
  /// were noisy.
  [[nodiscard]] bool improves() const noexcept { return mean < 0.0; }
};

PairedDelta paired_delta(const std::vector<double>& candidate,
                         const std::vector<double>& baseline) {
  std::vector<double> deltas;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    deltas.push_back(percent_delta(candidate[i], baseline[i]));
  }
  const Summary summary = summarize(deltas);
  return {summary.mean, ci95_half_width(deltas.size(), summary.stddev)};
}

RunOutcome run_once(const SimConfig& sim_config,
                    const ServiceConfig& service_config) {
  GridSimulator sim(sim_config);
  GridSchedulingService service(service_config);
  const ShardedSimReport report = run_sharded(sim, service);

  RunOutcome outcome;
  outcome.makespan = report.global.makespan;
  outcome.flowtime = report.global.mean_flowtime;
  outcome.flowtime_p99 = report.global.flowtime_hist.p99();
  outcome.flowtime_p99_overflow =
      report.global.flowtime_hist.percentile_overflows(99.0);
  outcome.flowtime_hist = report.global.flowtime_hist;
  outcome.utilization = report.global.utilization;
  outcome.cpu_ms = report.global.scheduler_cpu_ms;
  outcome.migrations = report.migrations;
  outcome.steals = report.steals;
  outcome.jobs_arrived = report.global.jobs_arrived;
  outcome.jobs_completed = report.global.jobs_completed;
  if (!report.per_class.empty()) {
    double sum = 0.0;
    int classes = 0;
    for (const SimMetrics& metrics : report.per_class) {
      if (metrics.jobs_completed == 0) continue;
      sum += metrics.mean_flowtime;
      ++classes;
    }
    if (classes > 0) outcome.class_flowtime = sum / classes;
  }
  for (const ShardActivationRecord& record : service.shard_activations()) {
    outcome.max_overshoot_ms = std::max(outcome.max_overshoot_ms,
                                        record.race_ms - record.budget_ms);
  }
  // Whole-activation wall-clock from the service's own books: under
  // concurrent activation this is what overlapping buys; sequentially it
  // is the sum of the shard races. The mean is taken over activations
  // that actually raced >= 2 shards (the drain tail of 1-shard
  // activations is identical in both modes and only dilutes the signal).
  double wall_sum = 0.0;
  int wall_count = 0;
  for (const ServiceActivationRecord& record : service.service_activations()) {
    outcome.max_act_wall_ms = std::max(outcome.max_act_wall_ms,
                                       record.wall_ms);
    if (record.shards_raced >= 2) {
      wall_sum += record.wall_ms;
      ++wall_count;
    }
  }
  if (wall_count > 0) outcome.mean_act_wall_ms = wall_sum / wall_count;
  return outcome;
}

void add_outcome(ConfigSummary& summary, const RunOutcome& outcome) {
  summary.makespan.add(outcome.makespan);
  summary.flowtime.add(outcome.flowtime);
  summary.flowtime_p99.add(outcome.flowtime_p99);
  summary.flowtime_p99_overflow |= outcome.flowtime_p99_overflow;
  summary.flowtime_hist.merge(outcome.flowtime_hist);
  summary.makespans.push_back(outcome.makespan);
  summary.flowtimes.push_back(outcome.flowtime);
  if (!std::isnan(outcome.class_flowtime)) {
    summary.class_flowtime.add(outcome.class_flowtime);
    summary.class_flowtimes.push_back(outcome.class_flowtime);
  }
  summary.utilization.add(outcome.utilization);
  summary.cpu_ms.add(outcome.cpu_ms);
  summary.max_act_wall_ms.add(outcome.max_act_wall_ms);
  summary.max_overshoot_ms.add(outcome.max_overshoot_ms);
  summary.migrations.add(outcome.migrations);
  summary.steals.add(outcome.steals);
}

/// Mean ± CI cell with the overflow marker: a ">" prefix says the p99
/// rank fell among samples clamped at the histogram's range end, so the
/// printed value is a floor, not an estimate.
std::string p99_cell(const RunningStats& stats, bool overflow) {
  const std::string cell = TablePrinter::mean_ci(stats, 1);
  return overflow ? ">" + cell : cell;
}

}  // namespace
}  // namespace gridsched

int main(int argc, char** argv) {
  using namespace gridsched;

  // Defaults put the grid in the regime sharding exists for: a large
  // machine pool with batch sizes where a global Min-Min pass no longer
  // fits the activation budget (so the single queue must truncate or bust
  // its latency), while a shard's sub-batch still solves exactly.
  CliParser cli("Sharded scheduling service vs single-portfolio baseline");
  cli.flag("minutes", "6", "simulated minutes of job arrivals");
  cli.flag("budget-ms", "25", "total wall-clock budget per activation");
  cli.flag("rate", "10", "job arrivals per simulated second");
  cli.flag("period", "120", "scheduler activation period (simulated s)");
  cli.flag("machines", "96", "grid machines");
  cli.flag("imbalance", "2", "rebalancing imbalance factor (0 = off)");
  cli.flag("noise", "0.15", "ETC pair noise of the inconsistent scenario");
  cli.flag("class-speedup", "3", "matched-class speedup of the class-"
                                 "structured scenarios (machine types)");
  cli.flag("routing", "class-backlog", "candidate routing of the overlap "
                                       "comparison (class-mix workload)");
  cli.flag("steal", "off", "drain-tail work stealing (on/off) for every "
                           "multi-shard configuration; the steal-on vs "
                           "steal-off drain-tail verdict runs either way");
  cli.flag("json", "", "write every verdict as machine-readable JSON to "
                       "this path (CI uploads it as the "
                       "BENCH_sharded_service.json perf artifact and diffs "
                       "it against bench/baselines/ with bench_diff)");
  cli.flag("trace", "", "run one extra traced configuration and write its "
                        "Chrome trace-event JSON to this path");
  cli.flag("metrics-jsonl", "", "with --trace: stream one metrics-snapshot "
                                "line per activation of the traced run to "
                                "this path");
  cli.flag("pool-threads", "4", "racing pool width of the overlap "
                                "comparison (>= 4 per the acceptance bar)");
  cli.flag("seed", "7", "base simulation seed");
  cli.flag("seeds", "3", "repetitions per configuration (mean ± 95% CI)");
  cli.flag("lat-tolerance", "5", "verdict bound on shard budget overshoot "
                                 "(ms); raise on noisy shared runners where "
                                 "an OS stall can exceed the cooperative-"
                                 "cancellation bound");
  if (!cli.parse(argc, argv)) return 0;

  const double budget_ms = cli.get_double("budget-ms");
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const RoutingKind overlap_routing = routing_kind_from_name(
      cli.get("routing"));
  const std::string steal_flag = cli.get("steal");
  if (steal_flag != "on" && steal_flag != "off") {
    std::cerr << "--steal must be 'on' or 'off'\n";
    return 1;
  }
  const bool steal_on = steal_flag == "on";
  obs::BenchReport bench_report;
  bench_report.bench = "sharded_service";
  SimConfig base;
  base.horizon = cli.get_double("minutes") * 60.0;
  base.arrival_rate = cli.get_double("rate");
  base.scheduler_period = cli.get_double("period");
  base.num_machines = static_cast<int>(cli.get_int("machines"));
  base.mips_min = 500.0;
  base.mips_max = 2'000.0;
  base.seed = static_cast<std::uint64_t>(cli.get_double("seed"));

  // The inconsistent grid is class-structured (3 interleaved machine
  // types, class-matched jobs run 3x faster) with mild pair noise on top;
  // its 3-class cycle is coprime to every shard count, so each shard
  // keeps every machine type. The class-mix scenario flips exactly that:
  // 2 machine types under 4 shards makes every shard CLASS-PURE, and a
  // 70/30 ClassMixWorkload skews the demand — per-class queue depth and
  // total queue depth now genuinely disagree, which is the gap between
  // least-backlog and class-backlog routing.
  const std::vector<Scenario> scenarios = {
      {"consistent", 0.0, 0, {}, RoutingKind::kLeastBacklog, 2.0},
      {"inconsistent", cli.get_double("noise"), 3, {},
       RoutingKind::kClassBacklog, 5.0},
      {"class-mix", 0.0, 2, {0.7, 0.3}, RoutingKind::kClassBacklog, 5.0},
  };
  const std::vector<int> shard_counts = {1, 2, 4, 8};

  std::cout << "=== sharded service vs single portfolio ===\n"
            << "total budget " << budget_ms << " ms/activation (split over "
            << "active shards), " << base.num_machines << " machines, "
            << base.arrival_rate << " jobs/s for " << base.horizon
            << " s, period " << base.scheduler_period << " s, " << seeds
            << " seed(s) from " << base.seed << "\n\n";

  bool acceptance_ok = true;
  for (const Scenario& scenario : scenarios) {
    SimConfig sim_config = base;
    sim_config.consistency_noise = scenario.noise;
    sim_config.num_job_classes = scenario.job_classes;
    sim_config.class_speedup = cli.get_double("class-speedup");
    if (!scenario.class_weights.empty()) {
      sim_config.workload = std::make_shared<ClassMixWorkload>(
          std::make_shared<PoissonWorkload>(
              sim_config.arrival_rate,
              LogNormalSize{sim_config.workload_log_mean,
                            sim_config.workload_log_sigma}),
          scenario.class_weights);
    }

    // The latency column shows the p99 flowtime tail (from the fixed-
    // bucket histogram), not the mean: a shard meltdown that slows 1% of
    // jobs 100x barely moves the mean. The paired verdicts below still
    // compare mean flowtime — their bounds predate the histogram.
    TablePrinter table({"shards", "routing", "makespan (s)", "p99 ft (s)",
                        "class ft (s)", "util", "cpu (ms)", "max act (ms)",
                        "ovr (ms)", "migr", "stl"});
    // (shards, routing) -> summary; the 1-shard baseline is routing-free.
    std::map<std::pair<int, RoutingKind>, ConfigSummary> summaries;

    // Replays one configuration over the seed set (seed i = the same
    // arrival trace in every configuration, so verdicts pair per seed).
    const auto run_config = [&](int num_shards, RoutingKind routing,
                                bool steal, const std::string& label) {
      ConfigSummary summary;
      for (int rep = 0; rep < seeds; ++rep) {
        SimConfig run_sim = sim_config;
        run_sim.seed = sim_config.seed + static_cast<std::uint64_t>(rep);
        ServiceConfig service_config;
        service_config.num_shards = num_shards;
        service_config.routing = routing;
        service_config.total_budget_ms = budget_ms;
        service_config.imbalance_factor = cli.get_double("imbalance");
        service_config.drain_steal = steal;
        service_config.seed = run_sim.seed;
        const RunOutcome outcome = run_once(run_sim, service_config);
        if (outcome.jobs_completed != outcome.jobs_arrived) {
          std::cout << "DROP: " << scenario.name << " " << label << " seed "
                    << rep << " completed " << outcome.jobs_completed << "/"
                    << outcome.jobs_arrived << " jobs\n";
          acceptance_ok = false;
        }
        add_outcome(summary, outcome);
      }
      return summary;
    };

    for (const int num_shards : shard_counts) {
      const std::span<const RoutingKind> kinds =
          num_shards == 1
              ? std::span<const RoutingKind>(all_routing_kinds().first(1))
              : all_routing_kinds();
      for (const RoutingKind routing : kinds) {
        const std::string label = std::to_string(num_shards) + " shards x " +
                                  std::string(routing_name(routing));
        ConfigSummary& summary = summaries[{num_shards, routing}];
        summary = run_config(num_shards, routing, steal_on, label);
        table.add_row({std::to_string(num_shards),
                       num_shards == 1 ? "(single queue)"
                                       : std::string(routing_name(routing)),
                       TablePrinter::mean_ci(summary.makespan, 1),
                       p99_cell(summary.flowtime_p99,
                                summary.flowtime_p99_overflow),
                       summary.class_flowtime.count() > 0
                           ? TablePrinter::mean_ci(summary.class_flowtime, 1)
                           : "-",
                       TablePrinter::num(summary.utilization.mean(), 2),
                       TablePrinter::num(summary.cpu_ms.mean(), 0),
                       TablePrinter::num(summary.max_act_wall_ms.mean(), 1),
                       TablePrinter::num(summary.max_overshoot_ms.mean(), 1),
                       TablePrinter::num(summary.migrations.mean(), 0),
                       TablePrinter::num(summary.steals.mean(), 0)});
      }
    }

    std::cout << "--- " << scenario.name << " ---\n";
    table.print(std::cout);

    // Acceptance focus: 4 shards + the scenario's candidate routing vs
    // the 1-shard baseline at equal total budget (paired per seed —
    // identical arrival traces), plus the latency contract: a shard must
    // stay within its budget slice up to the cooperative-cancellation
    // overshoot, which the single queue visibly cannot at these batch
    // sizes.
    const ConfigSummary& baseline =
        summaries[{1, RoutingKind::kRoundRobin}];
    const ConfigSummary& sharded = summaries[{4, scenario.candidate}];
    const PairedDelta mk = paired_delta(sharded.makespans,
                                        baseline.makespans);
    const PairedDelta ft = paired_delta(sharded.flowtimes,
                                        baseline.flowtimes);
    // The overshoot bound is a cooperative-cancellation contract: a
    // member may overrun its deadline by at most one uncancellable move.
    // Concurrent activation makes ALL shards' members runnable at once
    // (4 shards x 5 members here); when the host has fewer cores than
    // that, every "one move" is time-shared and the observed overshoot
    // stretches by the oversubscription factor, so the tolerance scales
    // with it (on a >= 20-core host the factor is 1 and the bound is the
    // flag verbatim).
    const double oversubscription = std::max(
        1.0, 20.0 / std::max(1u, std::thread::hardware_concurrency()));
    const double tolerance =
        cli.get_double("lat-tolerance") * oversubscription;
    const double overshoot = sharded.max_overshoot_ms.max();
    const bool latency_ok = overshoot <= tolerance;
    const bool ok = mk.no_worse(scenario.makespan_margin) && ft.no_worse() &&
                    latency_ok;
    std::cout << "verdict: 4 shards x " << routing_name(scenario.candidate)
              << " vs single queue "
              << "(paired over " << seeds << " seed(s)): makespan "
              << TablePrinter::pct(mk.mean, 2) << "% ± "
              << TablePrinter::num(mk.ci, 2) << ", flowtime "
              << TablePrinter::pct(ft.mean, 2) << "% ± "
              << TablePrinter::num(ft.ci, 2)
              << "; worst shard budget overshoot "
              << TablePrinter::num(overshoot, 2) << " ms (bound "
              << TablePrinter::num(tolerance, 1) << ", single queue "
              << TablePrinter::num(baseline.max_overshoot_ms.max(), 2)
              << " ms) -> " << (ok ? "OK" : "REGRESSION") << "\n";
    if (!ok) acceptance_ok = false;
    bench_report.verdicts.push_back(obs::BenchVerdict{
        .name = scenario.name + "/vs-single-queue",
        .ok = ok,
        .metrics = {{"makespan_pct", mk.mean},
                    {"makespan_ci", mk.ci},
                    {"flowtime_pct", ft.mean},
                    {"flowtime_ci", ft.ci},
                    {"max_overshoot_ms", overshoot},
                    {"overshoot_bound_ms", tolerance}},
        // Whole flowtime distributions (merged over seeds): bench_diff
        // reads the tails, not just the scalar deltas above.
        .histograms = {{"candidate_flowtime", sharded.flowtime_hist},
                       {"baseline_flowtime", baseline.flowtime_hist}}});

    // Class-routing verdict, on the scenario built for it: class-backlog
    // must hold makespan parity with least-backlog AND improve the
    // macro-averaged per-class flowtime — the QoS per-class queue story.
    if (!scenario.class_weights.empty()) {
      const ConfigSummary& least =
          summaries[{4, RoutingKind::kLeastBacklog}];
      const ConfigSummary& classed =
          summaries[{4, RoutingKind::kClassBacklog}];
      const PairedDelta cmk = paired_delta(classed.makespans,
                                           least.makespans);
      const PairedDelta cft = paired_delta(classed.class_flowtimes,
                                           least.class_flowtimes);
      const bool class_ok = cmk.no_worse() && cft.improves();
      std::cout << "verdict: 4 shards class-backlog vs least-backlog "
                << "(paired over " << seeds << " seed(s)): makespan "
                << TablePrinter::pct(cmk.mean, 2) << "% ± "
                << TablePrinter::num(cmk.ci, 2) << ", per-class flowtime "
                << TablePrinter::pct(cft.mean, 2) << "% ± "
                << TablePrinter::num(cft.ci, 2) << " -> "
                << (class_ok ? "OK" : "REGRESSION") << "\n";
      if (!class_ok) acceptance_ok = false;
      bench_report.verdicts.push_back(obs::BenchVerdict{
          .name = scenario.name + "/class-routing",
          .ok = class_ok,
          .metrics = {{"makespan_pct", cmk.mean},
                      {"makespan_ci", cmk.ci},
                      {"class_flowtime_pct", cft.mean},
                      {"class_flowtime_ci", cft.ci}},
        .histograms = {}});
    }

    // Drain-tail verdict, on the scenarios carrying the documented 5%
    // residue band (class-structured grids): cross-shard work stealing
    // must tighten the 4-shard makespan premium vs the single queue to
    // <= 2%. Both sides run regardless of --steal — the grid supplies the
    // flag's setting, the complement is replayed here — so the reclaim is
    // enforced at the bench's defaults, paired per seed.
    if (scenario.job_classes > 0) {
      const ConfigSummary complement = run_config(
          4, scenario.candidate,
          !steal_on,
          "4 shards x " + std::string(routing_name(scenario.candidate)) +
              (steal_on ? " (steal off)" : " (steal on)"));
      const ConfigSummary& with_steal = steal_on ? sharded : complement;
      const ConfigSummary& without_steal = steal_on ? complement : sharded;
      const PairedDelta mk_on = paired_delta(with_steal.makespans,
                                             baseline.makespans);
      const PairedDelta mk_off = paired_delta(without_steal.makespans,
                                              baseline.makespans);
      const bool drain_ok = mk_on.no_worse(2.0);
      std::cout << "verdict: drain tail, 4 shards x "
                << routing_name(scenario.candidate)
                << " vs single queue (paired over " << seeds
                << " seed(s)): makespan steal-off "
                << TablePrinter::pct(mk_off.mean, 2) << "% ± "
                << TablePrinter::num(mk_off.ci, 2) << " (bound "
                << TablePrinter::num(scenario.makespan_margin, 0)
                << "), steal-on " << TablePrinter::pct(mk_on.mean, 2)
                << "% ± " << TablePrinter::num(mk_on.ci, 2)
                << " (bound 2, "
                << TablePrinter::num(with_steal.steals.mean(), 0)
                << " steals/run) -> "
                << (drain_ok ? "OK" : "REGRESSION") << "\n";
      if (!drain_ok) acceptance_ok = false;
      bench_report.verdicts.push_back(obs::BenchVerdict{
          .name = scenario.name + "/drain-tail-steal",
          .ok = drain_ok,
          .metrics = {{"makespan_steal_on_pct", mk_on.mean},
                      {"makespan_steal_on_ci", mk_on.ci},
                      {"makespan_steal_off_pct", mk_off.mean},
                      {"makespan_steal_off_ci", mk_off.ci},
                      {"steals_per_run", with_steal.steals.mean()}},
        .histograms = {}});
    }
    std::cout << "\n";
  }

  // --- Overlap: sequential vs concurrent shard activation at equal total
  // budget, on the class-mix workload with the candidate routing. The
  // sequential mode pays the budget slices one after another (wall ~ the
  // whole budget); concurrent activation overlaps them on the shared pool
  // (wall ~ one slice), which is the whole point of group-scoped racing.
  {
    SimConfig sim_config = base;
    // The overlap measurement is a scheduler-LATENCY microbenchmark: its
    // operating point is deadline-dominated races (members stop at their
    // wall deadline, so overlapping turns N queued slices into one).
    // Long horizons push batches into the compute-bound regime where a
    // core-starved host serializes the same total work either way and
    // the contrast measures the machine, not the service — cap the
    // horizon so the comparison stays about activation overlap.
    sim_config.horizon = std::min(sim_config.horizon, 180.0);
    sim_config.num_job_classes = 2;
    sim_config.class_speedup = cli.get_double("class-speedup");
    sim_config.workload = std::make_shared<ClassMixWorkload>(
        std::make_shared<PoissonWorkload>(
            sim_config.arrival_rate,
            LogNormalSize{sim_config.workload_log_mean,
                          sim_config.workload_log_sigma}),
        std::vector<double>{0.7, 0.3});

    TablePrinter table({"activation", "mean act (ms)", "max act (ms)",
                        "makespan (s)", "p99 ft (s)"});
    RunningStats wall[2];  // 0 = sequential, 1 = concurrent
    RunningStats wall_max[2];
    RunningStats makespan[2];
    RunningStats flowtime[2];
    for (int mode = 0; mode < 2; ++mode) {
      for (int rep = 0; rep < seeds; ++rep) {
        SimConfig run_sim = sim_config;
        run_sim.seed = sim_config.seed + static_cast<std::uint64_t>(rep);
        ServiceConfig service_config;
        service_config.num_shards = 4;
        service_config.routing = overlap_routing;
        service_config.total_budget_ms = budget_ms;
        service_config.imbalance_factor = cli.get_double("imbalance");
        service_config.threads =
            static_cast<std::size_t>(cli.get_int("pool-threads"));
        service_config.concurrent_shards = mode == 1;
        service_config.drain_steal = steal_on;
        service_config.seed = run_sim.seed;
        const RunOutcome outcome = run_once(run_sim, service_config);
        if (outcome.jobs_completed != outcome.jobs_arrived) {
          std::cout << "DROP: overlap mode " << mode << " seed " << rep
                    << " completed " << outcome.jobs_completed << "/"
                    << outcome.jobs_arrived << " jobs\n";
          acceptance_ok = false;
        }
        wall[mode].add(outcome.mean_act_wall_ms);
        wall_max[mode].add(outcome.max_act_wall_ms);
        makespan[mode].add(outcome.makespan);
        flowtime[mode].add(outcome.flowtime_p99);
      }
      table.add_row({mode == 0 ? "sequential" : "concurrent",
                     TablePrinter::mean_ci(wall[mode], 2),
                     TablePrinter::num(wall_max[mode].max(), 2),
                     TablePrinter::mean_ci(makespan[mode], 1),
                     TablePrinter::mean_ci(flowtime[mode], 1)});
    }
    std::cout << "--- overlap: sequential vs concurrent activation (4 "
              << "shards x " << routing_name(overlap_routing) << ", "
              << cli.get("pool-threads") << " pool threads, class-mix) ---\n";
    table.print(std::cout);
    const double speedup = wall[1].mean() > 0
                               ? wall[0].mean() / wall[1].mean()
                               : 0.0;
    // "Measurably less": at least a 1.2x mean per-activation speedup. The
    // ideal with 4 busy shards is ~4x; even a fully time-shared single
    // core clears 1.2x easily because the members are deadline-bounded —
    // overlapped shards run to the SAME wall deadline instead of queueing
    // their slices back to back.
    const bool overlap_ok = speedup >= 1.2;
    std::cout << "verdict: concurrent activation "
              << TablePrinter::num(speedup, 2)
              << "x faster per activation at equal total budget -> "
              << (overlap_ok ? "OK" : "REGRESSION") << "\n\n";
    if (!overlap_ok) acceptance_ok = false;
    bench_report.verdicts.push_back(obs::BenchVerdict{
        .name = "overlap/concurrent-activation",
        .ok = overlap_ok,
        .metrics = {{"speedup", speedup},
                    {"sequential_mean_act_ms", wall[0].mean()},
                    {"concurrent_mean_act_ms", wall[1].mean()}},
        .histograms = {}});
  }

  // --- Observability overhead: the same configuration with tracing off
  // (null recorder — the deployment default) vs on (spans recorded and
  // flushed every activation), paired per seed. The disabled path is one
  // null check per site, so its cost must vanish into run-to-run noise;
  // the bound leaves headroom for scheduler jitter on shared runners
  // rather than gating at measurement resolution.
  {
    SimConfig sim_config = base;
    sim_config.horizon = std::min(sim_config.horizon, 180.0);
    sim_config.num_job_classes = 2;
    sim_config.class_speedup = cli.get_double("class-speedup");
    sim_config.workload = std::make_shared<ClassMixWorkload>(
        std::make_shared<PoissonWorkload>(
            sim_config.arrival_rate,
            LogNormalSize{sim_config.workload_log_mean,
                          sim_config.workload_log_sigma}),
        std::vector<double>{0.7, 0.3});

    RunningStats wall[2];  // 0 = tracing off, 1 = tracing on
    std::size_t trace_events = 0;
    for (int mode = 0; mode < 2; ++mode) {
      for (int rep = 0; rep < seeds; ++rep) {
        SimConfig run_sim = sim_config;
        run_sim.seed = sim_config.seed + static_cast<std::uint64_t>(rep);
        ServiceConfig service_config;
        service_config.num_shards = 4;
        service_config.routing = overlap_routing;
        service_config.total_budget_ms = budget_ms;
        service_config.imbalance_factor = cli.get_double("imbalance");
        service_config.threads =
            static_cast<std::size_t>(cli.get_int("pool-threads"));
        service_config.drain_steal = steal_on;
        service_config.seed = run_sim.seed;
        obs::TraceRecorder recorder;
        if (mode == 1) service_config.trace = &recorder;
        const RunOutcome outcome = run_once(run_sim, service_config);
        wall[mode].add(outcome.mean_act_wall_ms);
        if (mode == 1) trace_events += recorder.event_count();
      }
    }
    const double off_ms = wall[0].mean();
    const double on_ms = wall[1].mean();
    // 1.5x + 2 ms: multiplicative headroom for noise at realistic
    // activation walls, the additive floor for sub-millisecond ones.
    const double bound_ms = off_ms * 1.5 + 2.0;
    const bool overhead_ok = on_ms <= bound_ms;
    std::cout << "verdict: tracing overhead (4 shards x "
              << routing_name(overlap_routing) << ", paired over " << seeds
              << " seed(s)): mean activation wall off "
              << TablePrinter::num(off_ms, 3) << " ms, on "
              << TablePrinter::num(on_ms, 3) << " ms ("
              << trace_events / static_cast<std::size_t>(seeds)
              << " events/run; bound " << TablePrinter::num(bound_ms, 3)
              << ") -> " << (overhead_ok ? "OK" : "REGRESSION") << "\n\n";
    if (!overhead_ok) acceptance_ok = false;
    bench_report.verdicts.push_back(obs::BenchVerdict{
        .name = "observability/trace-overhead",
        .ok = overhead_ok,
        .metrics = {{"trace_off_mean_act_ms", off_ms},
                    {"trace_on_mean_act_ms", on_ms},
                    {"overhead_bound_ms", bound_ms}},
        .histograms = {}});
  }

  // --- Quality anchor: how close the service's scheduling core gets to
  // the LP makespan lower bound (bounds/lower_bound.h, docs/bounds.md) on
  // a fixed canonical instance. Evaluation-bounded rather than wall-clock-
  // bounded, so the result is a pure function of the seed — CI gates the
  // gap across commits without runner speed in the loop. Every other
  // verdict in this report measures the service against ITSELF (vs a
  // single queue, vs stealing off); this one measures it against a proven
  // floor no configuration can beat.
  {
    InstanceSpec spec;  // defaults: consistent hi-hi, the paper-table class
    spec.num_jobs = 64;
    spec.num_machines = 8;
    const EtcMatrix anchor_etc = generate_instance(spec);
    PortfolioConfig portfolio_config;
    portfolio_config.budget_ms = 60'000.0;  // generous: evaluations bind
    portfolio_config.threads = 2;
    portfolio_config.member_stop.max_evaluations = 20'000;
    portfolio_config.seed = base.seed;
    PortfolioBatchScheduler portfolio(
        portfolio_config,
        PortfolioBatchScheduler::default_members(portfolio_config));
    const Schedule schedule = portfolio.schedule_batch(anchor_etc);
    const double makespan =
        make_individual(schedule, anchor_etc, portfolio_config.weights)
            .objectives.makespan;
    const auto bound = bounds::makespan_bound(anchor_etc);
    const double gap = bounds::optimality_gap_pct(makespan, bound.value);
    const bool anchor_ok = makespan >= bound.value * (1.0 - 1e-9);
    std::cout << "verdict: quality anchor (" << spec.num_jobs << "x"
              << spec.num_machines << " " << spec.name() << ", "
              << portfolio_config.member_stop.max_evaluations
              << " evals/member, seed " << base.seed << "): makespan "
              << TablePrinter::num(makespan, 1) << " vs LP bound "
              << TablePrinter::num(bound.value, 1) << " -> gap "
              << TablePrinter::num(gap, 2) << "% "
              << (anchor_ok ? "OK" : "BELOW BOUND (evaluator bug)")
              << "\n\n";
    if (!anchor_ok) acceptance_ok = false;
    obs::BenchVerdict verdict;
    verdict.name = "quality/gap-anchor";
    verdict.ok = anchor_ok;
    verdict.metrics.emplace_back("anchor_makespan", makespan);
    obs::add_gap_metric(verdict, "anchor_makespan", makespan, bound.value);
    bench_report.verdicts.push_back(std::move(verdict));
  }

  // --- Dedicated traced run: one class-mix configuration with every
  // subsystem engaged (stealing, resizing left at defaults), its Chrome
  // trace and optional metrics JSONL written for CI to upload.
  if (!cli.get("trace").empty()) {
    SimConfig sim_config = base;
    sim_config.horizon = std::min(sim_config.horizon, 180.0);
    sim_config.num_job_classes = 2;
    sim_config.class_speedup = cli.get_double("class-speedup");
    sim_config.workload = std::make_shared<ClassMixWorkload>(
        std::make_shared<PoissonWorkload>(
            sim_config.arrival_rate,
            LogNormalSize{sim_config.workload_log_mean,
                          sim_config.workload_log_sigma}),
        std::vector<double>{0.7, 0.3});
    ServiceConfig service_config;
    service_config.num_shards = 4;
    service_config.routing = overlap_routing;
    service_config.total_budget_ms = budget_ms;
    service_config.imbalance_factor = cli.get_double("imbalance");
    service_config.threads =
        static_cast<std::size_t>(cli.get_int("pool-threads"));
    service_config.drain_steal = true;
    service_config.seed = sim_config.seed;
    obs::TraceRecorder recorder;
    service_config.trace = &recorder;
    service_config.metrics_jsonl_path = cli.get("metrics-jsonl");
    (void)run_once(sim_config, service_config);
    if (recorder.write_file(cli.get("trace"))) {
      std::cout << "wrote " << cli.get("trace") << " ("
                << recorder.event_count() << " trace events)\n";
    } else {
      acceptance_ok = false;
    }
  }

  if (!cli.get("json").empty()) {
    bench_report.ok = acceptance_ok;
    bench_report.write_file(cli.get("json"));
  }

  std::cout << (acceptance_ok
                    ? "sharded service holds the single-queue baseline at "
                      "equal total budget\n"
                    : "sharded service REGRESSED against the single-queue "
                      "baseline\n");
  return acceptance_ok ? 0 : 1;
}
