// Sharded service vs single-portfolio dynamic scheduling.
//
//   $ ./sharded_service [--minutes 10] [--budget-ms 25] [--seeds 3]
//
// Two grid scenarios (consistent and inconsistent ETC) are replayed under
// the sharded scheduling service at 1/2/4/8 shards crossed with the three
// routing policies, all at EQUAL TOTAL BUDGET: the 1-shard baseline gives
// its whole budget to one portfolio; N shards split the same budget over
// the shards with work, activated one at a time on the shared pool. For
// every configuration we report end-to-end makespan, mean flowtime,
// utilization, scheduler CPU, the worst per-activation latency (sum of the
// shard races of that activation), the worst single-shard budget overshoot
// and the number of rebalancing migrations. `--seeds N` repeats every
// configuration over N seeds and reports mean ± 95% CI (common/stats).
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "benchutil/table.h"
#include "common/cli.h"
#include "common/stats.h"
#include "service/sharded_driver.h"

namespace gridsched {
namespace {

struct Scenario {
  std::string name;
  double noise = 0.0;
  int job_classes = 0;  // class-structured inconsistency (machine types)
};

struct RunOutcome {
  double makespan = 0.0;
  double flowtime = 0.0;
  double utilization = 0.0;
  double cpu_ms = 0.0;
  double max_activation_ms = 0.0;  // worst sum of shard races, one activation
  double max_overshoot_ms = 0.0;   // worst single shard race - its budget
  int migrations = 0;
};

struct ConfigSummary {
  RunningStats makespan;
  RunningStats flowtime;
  RunningStats utilization;
  RunningStats cpu_ms;
  RunningStats max_activation_ms;
  RunningStats max_overshoot_ms;
  RunningStats migrations;
  // Raw per-seed values for paired comparisons (seed i of every
  // configuration replays the same arrival trace).
  std::vector<double> makespans;
  std::vector<double> flowtimes;
};

/// Paired non-inferiority over seeds: "no worse" means the mean per-seed
/// delta is within the parity margin, or its 95% CI still admits zero
/// (the premium is not statistically distinguishable from none). The 2%
/// margin is the usual parity treatment for makespan-class metrics:
/// makespan is a max statistic, and the racing members are wall-clock
/// budgeted, so the truncation point — and with it the committed
/// schedule — jitters a little run to run even at a fixed seed.
struct PairedDelta {
  double mean = 0.0;
  double ci = 0.0;

  [[nodiscard]] bool no_worse() const noexcept {
    return mean <= 2.0 || mean - ci <= 0.0;
  }
};

PairedDelta paired_delta(const std::vector<double>& candidate,
                         const std::vector<double>& baseline) {
  std::vector<double> deltas;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    deltas.push_back(percent_delta(candidate[i], baseline[i]));
  }
  const Summary summary = summarize(deltas);
  return {summary.mean, ci95_half_width(deltas.size(), summary.stddev)};
}

RunOutcome run_once(const SimConfig& sim_config,
                    const ServiceConfig& service_config) {
  GridSimulator sim(sim_config);
  GridSchedulingService service(service_config);
  const ShardedSimReport report = run_sharded(sim, service);

  RunOutcome outcome;
  outcome.makespan = report.global.makespan;
  outcome.flowtime = report.global.mean_flowtime;
  outcome.utilization = report.global.utilization;
  outcome.cpu_ms = report.global.scheduler_cpu_ms;
  outcome.migrations = report.migrations;
  std::map<std::uint64_t, double> per_activation;
  for (const ShardActivationRecord& record : service.shard_activations()) {
    per_activation[record.activation] += record.race_ms;
    outcome.max_overshoot_ms = std::max(outcome.max_overshoot_ms,
                                        record.race_ms - record.budget_ms);
  }
  for (const auto& [activation, total_ms] : per_activation) {
    outcome.max_activation_ms = std::max(outcome.max_activation_ms, total_ms);
  }
  return outcome;
}

}  // namespace
}  // namespace gridsched

int main(int argc, char** argv) {
  using namespace gridsched;

  // Defaults put the grid in the regime sharding exists for: a large
  // machine pool with batch sizes where a global Min-Min pass no longer
  // fits the activation budget (so the single queue must truncate or bust
  // its latency), while a shard's sub-batch still solves exactly.
  CliParser cli("Sharded scheduling service vs single-portfolio baseline");
  cli.flag("minutes", "6", "simulated minutes of job arrivals");
  cli.flag("budget-ms", "25", "total wall-clock budget per activation");
  cli.flag("rate", "10", "job arrivals per simulated second");
  cli.flag("period", "120", "scheduler activation period (simulated s)");
  cli.flag("machines", "96", "grid machines");
  cli.flag("imbalance", "2", "rebalancing imbalance factor (0 = off)");
  cli.flag("noise", "0.15", "ETC pair noise of the inconsistent scenario");
  cli.flag("class-speedup", "3", "matched-class speedup of the inconsistent "
                                 "scenario (machine-type heterogeneity)");
  cli.flag("seed", "7", "base simulation seed");
  cli.flag("seeds", "3", "repetitions per configuration (mean ± 95% CI)");
  cli.flag("lat-tolerance", "5", "verdict bound on shard budget overshoot "
                                 "(ms); raise on noisy shared runners where "
                                 "an OS stall can exceed the cooperative-"
                                 "cancellation bound");
  if (!cli.parse(argc, argv)) return 0;

  const double budget_ms = cli.get_double("budget-ms");
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  SimConfig base;
  base.horizon = cli.get_double("minutes") * 60.0;
  base.arrival_rate = cli.get_double("rate");
  base.scheduler_period = cli.get_double("period");
  base.num_machines = static_cast<int>(cli.get_int("machines"));
  base.mips_min = 500.0;
  base.mips_max = 2'000.0;
  base.seed = static_cast<std::uint64_t>(cli.get_double("seed"));

  // The inconsistent grid is class-structured (3 interleaved machine
  // types, class-matched jobs run 3x faster) with mild pair noise on top:
  // machine orderings genuinely differ per job, yet a stride partition
  // keeps every type in every shard — the inconsistency real
  // heterogeneous grids have, and the regime sharding must survive.
  const std::vector<Scenario> scenarios = {
      {"consistent", 0.0, 0},
      {"inconsistent", cli.get_double("noise"), 3},
  };
  const std::vector<int> shard_counts = {1, 2, 4, 8};

  std::cout << "=== sharded service vs single portfolio ===\n"
            << "total budget " << budget_ms << " ms/activation (split over "
            << "active shards), " << base.num_machines << " machines, "
            << base.arrival_rate << " jobs/s for " << base.horizon
            << " s, period " << base.scheduler_period << " s, " << seeds
            << " seed(s) from " << base.seed << "\n\n";

  bool acceptance_ok = true;
  for (const Scenario& scenario : scenarios) {
    SimConfig sim_config = base;
    sim_config.consistency_noise = scenario.noise;
    sim_config.num_job_classes = scenario.job_classes;
    sim_config.class_speedup = cli.get_double("class-speedup");

    TablePrinter table({"shards", "routing", "makespan (s)", "flowtime (s)",
                        "util", "cpu (ms)", "max act (ms)", "ovr (ms)",
                        "migr"});
    // (shards, routing) -> summary; the 1-shard baseline is routing-free.
    std::map<std::pair<int, RoutingKind>, ConfigSummary> summaries;

    for (const int num_shards : shard_counts) {
      const std::span<const RoutingKind> kinds =
          num_shards == 1
              ? std::span<const RoutingKind>(all_routing_kinds().first(1))
              : all_routing_kinds();
      for (const RoutingKind routing : kinds) {
        ConfigSummary& summary = summaries[{num_shards, routing}];
        for (int rep = 0; rep < seeds; ++rep) {
          SimConfig run_sim = sim_config;
          run_sim.seed = sim_config.seed + static_cast<std::uint64_t>(rep);
          ServiceConfig service_config;
          service_config.num_shards = num_shards;
          service_config.routing = routing;
          service_config.total_budget_ms = budget_ms;
          service_config.imbalance_factor = cli.get_double("imbalance");
          service_config.seed = run_sim.seed;
          const RunOutcome outcome = run_once(run_sim, service_config);
          summary.makespan.add(outcome.makespan);
          summary.flowtime.add(outcome.flowtime);
          summary.makespans.push_back(outcome.makespan);
          summary.flowtimes.push_back(outcome.flowtime);
          summary.utilization.add(outcome.utilization);
          summary.cpu_ms.add(outcome.cpu_ms);
          summary.max_activation_ms.add(outcome.max_activation_ms);
          summary.max_overshoot_ms.add(outcome.max_overshoot_ms);
          summary.migrations.add(outcome.migrations);
        }
        table.add_row({std::to_string(num_shards),
                       num_shards == 1 ? "(single queue)"
                                       : std::string(routing_name(routing)),
                       TablePrinter::mean_ci(summary.makespan, 1),
                       TablePrinter::mean_ci(summary.flowtime, 1),
                       TablePrinter::num(summary.utilization.mean(), 2),
                       TablePrinter::num(summary.cpu_ms.mean(), 0),
                       TablePrinter::num(summary.max_activation_ms.mean(), 1),
                       TablePrinter::num(summary.max_overshoot_ms.mean(), 1),
                       TablePrinter::num(summary.migrations.mean(), 0)});
      }
    }

    std::cout << "--- " << scenario.name << " ---\n";
    table.print(std::cout);

    // Acceptance focus: 4 shards + least-backlog vs the 1-shard baseline
    // at equal total budget (paired per seed — identical arrival traces),
    // plus the latency contract: a shard must stay within its budget
    // slice up to the cooperative-cancellation overshoot, which the
    // single queue visibly cannot at these batch sizes.
    const ConfigSummary& baseline =
        summaries[{1, RoutingKind::kRoundRobin}];
    const ConfigSummary& sharded =
        summaries[{4, RoutingKind::kLeastBacklog}];
    const PairedDelta mk = paired_delta(sharded.makespans,
                                        baseline.makespans);
    const PairedDelta ft = paired_delta(sharded.flowtimes,
                                        baseline.flowtimes);
    const double overshoot = sharded.max_overshoot_ms.max();
    const bool latency_ok = overshoot <= cli.get_double("lat-tolerance");
    const bool ok = mk.no_worse() && ft.no_worse() && latency_ok;
    std::cout << "verdict: 4 shards x least-backlog vs single queue "
              << "(paired over " << seeds << " seed(s)): makespan "
              << TablePrinter::pct(mk.mean, 2) << "% ± "
              << TablePrinter::num(mk.ci, 2) << ", flowtime "
              << TablePrinter::pct(ft.mean, 2) << "% ± "
              << TablePrinter::num(ft.ci, 2)
              << "; worst shard budget overshoot "
              << TablePrinter::num(overshoot, 2) << " ms (single queue "
              << TablePrinter::num(baseline.max_overshoot_ms.max(), 2)
              << " ms) -> " << (ok ? "OK" : "REGRESSION") << "\n\n";
    if (!ok) acceptance_ok = false;
  }

  std::cout << (acceptance_ok
                    ? "sharded service holds the single-queue baseline at "
                      "equal total budget\n"
                    : "sharded service REGRESSED against the single-queue "
                      "baseline\n");
  return acceptance_ok ? 0 : 1;
}
