// The paper's conclusions: "evaluating our cMA with larger size grid
// instances is being done using instances generated according to the ETC
// model". This bench runs that study: consistent hi-hi instances from the
// benchmark's 512x16 up to 4096x128, comparing the cMA against Min-Min
// (the strongest constructive heuristic) and the Struggle GA at the same
// budget.
#include "bench_common.h"

#include "core/individual.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Scaling: larger ETC instances (future-work study)", args);

  struct Shape {
    int jobs;
    int machines;
  };
  const std::vector<Shape> shapes{{512, 16}, {1024, 32}, {2048, 64},
                                  {4096, 128}};

  std::vector<EtcMatrix> instances;
  std::vector<SeededRun> jobs;
  for (const Shape& shape : shapes) {
    InstanceSpec spec;  // consistent hi-hi
    spec.num_jobs = shape.jobs;
    spec.num_machines = shape.machines;
    instances.push_back(generate_instance(spec));
  }
  for (const EtcMatrix& etc : instances) {
    const EtcMatrix* etc_ptr = &etc;
    jobs.push_back([etc_ptr, &args](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      return CellularMemeticAlgorithm(config).run(*etc_ptr);
    });
    jobs.push_back([etc_ptr, &args](std::uint64_t seed) {
      StruggleGaConfig config;
      config.stop = StopCondition{.max_time_ms = args.time_ms};
      config.seed = seed;
      return StruggleGa(config).run(*etc_ptr);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  TablePrinter table({"shape", "Min-Min", "Struggle GA", "cMA",
                      "cMA vs Min-Min %", "cMA evals/run"});
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const EtcMatrix& etc = instances[i];
    const Individual minmin =
        make_individual(min_min(etc), etc, FitnessWeights{});
    // Push order above: cMA first, Struggle second.
    const auto& cma = results[2 * i];
    const auto& struggle = results[2 * i + 1];
    double evals = 0.0;
    for (const auto& run : cma.runs) {
      evals += static_cast<double>(run.evaluations);
    }
    evals /= static_cast<double>(cma.runs.size());
    table.add_row(
        {std::to_string(shapes[i].jobs) + "x" +
             std::to_string(shapes[i].machines),
         TablePrinter::num(minmin.objectives.makespan, 0),
         TablePrinter::num(struggle.makespan.min, 0),
         TablePrinter::num(cma.makespan.min, 0),
         TablePrinter::pct((minmin.objectives.makespan - cma.makespan.min) /
                               minmin.objectives.makespan * 100.0,
                           2),
         TablePrinter::num(evals, 0)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: the LJFR-seeded cMA's fixed-budget margin over "
               "Min-Min shrinks as the instance grows (evaluations per gene "
               "collapse) and eventually inverts, while the Min-Min-seeded "
               "Struggle GA merely clings to its seed. Large grids need "
               "longer budgets or stronger seeding — which is the paper's "
               "argument for scheduling *small dynamic batches* with the "
               "cMA rather than giant static instances\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Scaling study on larger ETC instances");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
