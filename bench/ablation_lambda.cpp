// Ablation beyond the paper: sensitivity of both objectives to the fitness
// weight lambda (Eq. 3). The paper fixes lambda = 0.75 after tuning; this
// bench shows the makespan/flowtime trade-off that choice navigates.
#include "bench_common.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Ablation: fitness weight lambda sweep", args);
  const EtcMatrix etc = tuning_instance(args);

  const std::vector<double> lambdas{0.0, 0.25, 0.5, 0.75, 0.9, 1.0};
  std::vector<SeededRun> jobs;
  for (double lambda : lambdas) {
    jobs.push_back([&, lambda](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      config.weights.lambda = lambda;
      return CellularMemeticAlgorithm(config).run(etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  TablePrinter table({"lambda", "makespan (mean)", "flowtime (mean)",
                      "makespan (best)", "flowtime of best"});
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    const auto& result = results[i];
    table.add_row({TablePrinter::num(lambdas[i], 2),
                   TablePrinter::num(result.makespan.mean),
                   TablePrinter::num(result.flowtime.mean),
                   TablePrinter::num(result.makespan.min),
                   TablePrinter::num(
                       result.best().best.objectives.flowtime)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: makespan falls and flowtime rises as lambda "
               "grows; lambda=0.75 (paper) trades a small flowtime increase "
               "for most of the makespan gain\n";
  return 0;
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv, "Ablation: lambda (fitness weight) sweep");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
