// Reproduces Table 3 of the paper: best makespan of the Carretero&Xhafa-
// style steady-state GA and the Struggle GA vs the cMA.
#include "bench_common.h"

namespace gridsched::bench {
namespace {

int run(const BenchArgs& args) {
  print_header("Table 3: makespan, steady-state GA / Struggle GA vs cMA",
               args);
  const auto instances = benchmark_instances(args);

  std::vector<SeededRun> jobs;
  for (const auto& instance : instances) {
    const EtcMatrix* etc = &instance.etc;
    jobs.push_back([etc, &args](std::uint64_t seed) {
      SteadyStateGaConfig config;
      config.stop = bench_stop(args);
      config.seed = seed;
      return SteadyStateGa(config).run(*etc);
    });
    jobs.push_back([etc, &args](std::uint64_t seed) {
      StruggleGaConfig config;
      config.stop = bench_stop(args);
      config.seed = seed;
      return StruggleGa(config).run(*etc);
    });
    jobs.push_back([etc, &args](std::uint64_t seed) {
      CmaConfig config = paper_cma_config(args);
      config.seed = seed;
      return CellularMemeticAlgorithm(config).run(*etc);
    });
  }
  const auto results = run_matrix(jobs, args.runs, args.seed,
                                  shared_pool(args));

  std::vector<std::string> headers = {"Instance",       "ssGA (meas)",
                                      "Struggle (meas)", "cMA (meas)",
                                      "ssGA (paper)",    "Struggle (paper)",
                                      "cMA (paper)"};
  if (args.gap) {
    headers.insert(headers.begin() + 4, {"LB", "cMA gap%"});
  }
  TablePrinter table(headers);

  obs::BenchReport report;
  report.bench = "table3_makespan_vs_gas";
  int cma_wins = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::string& label = instances[i].label;
    const auto& ss = results[3 * i];
    const auto& struggle = results[3 * i + 1];
    const auto& cma = results[3 * i + 2];
    cma_wins += (cma.makespan.min < ss.makespan.min &&
                 cma.makespan.min < struggle.makespan.min)
                    ? 1
                    : 0;
    const auto paper = paper_reference(label);
    std::vector<std::string> row = {
        label,
        TablePrinter::num(ss.makespan.min),
        TablePrinter::num(struggle.makespan.min),
        TablePrinter::num(cma.makespan.min),
        paper ? TablePrinter::num(paper->cx_ga_makespan) : "-",
        paper ? TablePrinter::num(paper->struggle_ga_makespan) : "-",
        paper ? TablePrinter::num(paper->cma_makespan) : "-"};
    if (args.gap) {
      const auto bound =
          bounds::makespan_bound(instances[i].etc, lp_options(args));
      row.insert(row.begin() + 4, {TablePrinter::num(bound.value),
                                   gap_cell(cma.makespan.min, bound)});

      obs::BenchVerdict verdict;
      verdict.name = label;
      verdict.metrics.emplace_back("ssga_makespan", ss.makespan.min);
      verdict.metrics.emplace_back("struggle_makespan", struggle.makespan.min);
      verdict.metrics.emplace_back("cma_makespan", cma.makespan.min);
      obs::add_gap_metric(verdict, "cma_makespan", cma.makespan.min,
                          bound.value);
      const double floor = bound.value * (1.0 - 1e-9);
      verdict.ok = ss.makespan.min >= floor &&
                   struggle.makespan.min >= floor && cma.makespan.min >= floor;
      report.verdicts.push_back(std::move(verdict));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\ncMA strictly best on " << cma_wins
            << "/12 instances (the paper reports wins on about half, ties "
               "in quality elsewhere)\n";
  return finish_report(report, args);
}

}  // namespace
}  // namespace gridsched::bench

int main(int argc, char** argv) {
  const auto args = gridsched::bench::parse_args(
      argc, argv,
      "Table 3: best makespan, steady-state GA and Struggle GA vs cMA");
  if (!args) return 0;
  return gridsched::bench::run(*args);
}
